//===- core/TraceIndex.cpp - Analytic replay index over a trace ------------===//

#include "core/TraceIndex.h"

#include "core/Trace.h"
#include "support/Varint.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace tpdbt;
using namespace tpdbt::core;
using namespace tpdbt::guest;

TraceIndex TraceIndex::build(const BlockTrace &Trace) {
  const size_t N = Trace.numBlocks();
  const size_t E = Trace.numEvents();
  assert(E < (1ull << 32) && "trace too large for a 32-bit position index");

  TraceIndex Idx;
  Idx.TotalInsts = Trace.totalInsts();
  Idx.TakenEvents = Trace.takenEvents();

  // Pass 1 equivalent: the trace already maintains final per-block use
  // counts, which are exactly the CSR row sizes.
  const std::vector<profile::BlockCounters> &Final = Trace.finalCounts();
  Idx.BlockBegin.resize(N + 1);
  uint32_t Offset = 0;
  for (size_t B = 0; B < N; ++B) {
    Idx.BlockBegin[B] = Offset;
    Offset += static_cast<uint32_t>(Final[B].Use);
  }
  Idx.BlockBegin[N] = Offset;
  assert(Offset == E && "final counts disagree with the event stream");

  Idx.OccPos.resize(E);
  Idx.TakenPre.resize(E + N);
  Idx.InstsPre.resize(E + N);
  Idx.GlobalInsts.resize(E + 1);
  Idx.GlobalTaken.resize(E + 1);

  // Pass 2: scatter positions and accumulate prefix rows. Cursor[B] is the
  // next free OccPos slot of block B; the prefix rows carry a leading zero.
  std::vector<uint32_t> Cursor(Idx.BlockBegin.begin(),
                               Idx.BlockBegin.end() - 1);
  for (size_t B = 0; B < N; ++B) {
    Idx.TakenPre[Idx.prefBegin(static_cast<BlockId>(B))] = 0;
    Idx.InstsPre[Idx.prefBegin(static_cast<BlockId>(B))] = 0;
  }
  Idx.GlobalInsts[0] = 0;
  Idx.GlobalTaken[0] = 0;
  for (size_t I = 0; I < E; ++I) {
    const TraceEvent &Ev = Trace.event(I);
    const bool Taken = Ev.Branch == 2;
    uint32_t Slot = Cursor[Ev.Block]++;
    Idx.OccPos[Slot] = static_cast<uint32_t>(I);
    size_t Row = Slot + Ev.Block; // prefBegin(Block) + occurrence rank
    Idx.TakenPre[Row + 1] = Idx.TakenPre[Row] + (Taken ? 1 : 0);
    Idx.InstsPre[Row + 1] = Idx.InstsPre[Row] + Ev.Insts;
    Idx.GlobalInsts[I + 1] = Idx.GlobalInsts[I] + Ev.Insts;
    Idx.GlobalTaken[I + 1] = Idx.GlobalTaken[I] + (Taken ? 1 : 0);
  }
  return Idx;
}

TraceIndex::SegmentPart TraceIndex::buildPart(const TraceEvent *Ev, size_t N,
                                              size_t NumBlocks,
                                              uint64_t BasePos) {
  SegmentPart Part;
  Part.SegBegin.assign(NumBlocks + 1, 0);
  // Counting sort by block: one pass for per-block counts, exclusive
  // prefix for the row offsets, one pass to scatter. Positions within a
  // block row come out in stream order, which is what the stitched CSR
  // rows need.
  for (size_t I = 0; I < N; ++I)
    ++Part.SegBegin[Ev[I].Block + 1];
  for (size_t B = 0; B < NumBlocks; ++B)
    Part.SegBegin[B + 1] += Part.SegBegin[B];
  Part.Pos.resize(N);
  Part.Taken.resize(N);
  Part.Insts.resize(N);
  std::vector<uint32_t> Cursor(Part.SegBegin.begin(), Part.SegBegin.end() - 1);
  for (size_t I = 0; I < N; ++I) {
    const uint32_t Slot = Cursor[Ev[I].Block]++;
    Part.Pos[Slot] = static_cast<uint32_t>(BasePos + I);
    Part.Taken[Slot] = Ev[I].Branch == 2 ? 1 : 0;
    Part.Insts[Slot] = Ev[I].Insts;
  }
  return Part;
}

TraceIndex TraceIndex::stitch(const BlockTrace &Trace, uint64_t Budget,
                              const std::vector<SegmentPart> &Parts,
                              std::vector<SegmentBase> Directory) {
  const size_t N = Trace.numBlocks();
  const size_t E = Trace.numEvents();
  assert(E < (1ull << 32) && "trace too large for a 32-bit position index");

  TraceIndex Idx;
  Idx.TotalInsts = Trace.totalInsts();
  Idx.TakenEvents = Trace.takenEvents();
  Idx.SegmentBudget = Budget;
  Idx.Directory = std::move(Directory);

  const std::vector<profile::BlockCounters> &Final = Trace.finalCounts();
  Idx.BlockBegin.resize(N + 1);
  uint32_t Offset = 0;
  for (size_t B = 0; B < N; ++B) {
    Idx.BlockBegin[B] = Offset;
    Offset += static_cast<uint32_t>(Final[B].Use);
  }
  Idx.BlockBegin[N] = Offset;
  assert(Offset == E && "final counts disagree with the event stream");

  Idx.OccPos.resize(E);
  Idx.TakenPre.resize(E + N);
  Idx.InstsPre.resize(E + N);

  // Per-block rows: concatenate each part's block row in stream order
  // (parts are ordered, and within a part a row is in stream order), and
  // continue the prefix sums across segment boundaries. The parts carry
  // the outcome/instruction payload, so this pass reads the parts
  // sequentially instead of chasing positions through the event stream.
  for (size_t B = 0; B < N; ++B) {
    size_t Dst = Idx.BlockBegin[B];
    const size_t Row = Idx.prefBegin(static_cast<guest::BlockId>(B));
    size_t K = 0;
    Idx.TakenPre[Row] = 0;
    Idx.InstsPre[Row] = 0;
    for (const SegmentPart &Part : Parts) {
      const uint32_t From = Part.SegBegin[B], To = Part.SegBegin[B + 1];
      for (uint32_t J = From; J < To; ++J, ++K) {
        Idx.OccPos[Dst + K] = Part.Pos[J];
        Idx.TakenPre[Row + K + 1] = Idx.TakenPre[Row + K] + Part.Taken[J];
        Idx.InstsPre[Row + K + 1] = Idx.InstsPre[Row + K] + Part.Insts[J];
      }
    }
    assert(K == Final[B].Use && "segment parts disagree with final counts");
  }

  // Global prefix sums: one sequential pass over the stream (memory-bound
  // and branch-free; not worth splitting per segment).
  Idx.GlobalInsts.resize(E + 1);
  Idx.GlobalTaken.resize(E + 1);
  Idx.GlobalInsts[0] = 0;
  Idx.GlobalTaken[0] = 0;
  for (size_t I = 0; I < E; ++I) {
    const TraceEvent &Ev = Trace.event(I);
    Idx.GlobalInsts[I + 1] = Idx.GlobalInsts[I] + Ev.Insts;
    Idx.GlobalTaken[I + 1] = Idx.GlobalTaken[I] + (Ev.Branch == 2 ? 1 : 0);
  }
  return Idx;
}

uint32_t TraceIndex::usesThrough(BlockId B, uint32_t Pos) const {
  const uint32_t *Begin = OccPos.data() + BlockBegin[B];
  const uint32_t *End = OccPos.data() + BlockBegin[B + 1];
  return static_cast<uint32_t>(std::upper_bound(Begin, End, Pos) - Begin);
}

uint32_t TraceIndex::occurrenceAt(BlockId B, uint32_t Pos) const {
  const uint32_t *Begin = OccPos.data() + BlockBegin[B];
  const uint32_t *End = OccPos.data() + BlockBegin[B + 1];
  const uint32_t *It = std::lower_bound(Begin, End, Pos);
  assert(It != End && *It == Pos && "position is not an occurrence of B");
  return static_cast<uint32_t>(It - Begin);
}

uint32_t TraceIndex::firstOutcomeChange(BlockId B, uint32_t K,
                                        bool Taken) const {
  const size_t Row = prefBegin(B);
  const uint32_t Cnt = occurrences(B);
  // Along a run of occurrences whose outcome equals Taken, the quantity
  // below is constant, and it is strictly monotone across a differing
  // outcome — so the run end is a partition point.
  auto RunKey = [&](uint32_t J) -> int64_t {
    return Taken ? static_cast<int64_t>(TakenPre[Row + J]) - J
                 : static_cast<int64_t>(TakenPre[Row + J]);
  };
  // Outcomes [K, J) all equal Taken iff RunKey(J) == RunKey(K); find the
  // first J in (K, Cnt] where that fails. The answer is J - 1 (the first
  // differing occurrence), or Cnt when the whole tail matches. Runs are
  // typically short relative to the row, so gallop out from K before
  // bisecting the last doubling interval.
  const int64_t Key = RunKey(K);
  uint32_t Base = K, Step = 1;
  while (Base + Step <= Cnt && RunKey(Base + Step) == Key) {
    Base += Step;
    Step *= 2;
  }
  // [K, Base] all match; the first mismatch, if any, lies in
  // (Base, Base + Step] — clipped to the row when the gallop ran off it.
  uint32_t Lo = Base + 1, Hi = std::min(Base + Step, Cnt + 1);
  while (Lo < Hi) {
    uint32_t Mid = Lo + (Hi - Lo) / 2;
    if (RunKey(Mid) == Key)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo - 1;
}

namespace {

constexpr char IdxMagic[4] = {'T', 'P', 'D', 'X'};
/// v2 added the segment directory (budget + per-segment events and
/// global prefix-sum bases); v1 sidecars (no directory) remain readable.
constexpr uint8_t IdxVersionPlain = 1;
constexpr uint8_t IdxVersionSegmented = 2;

template <typename T> void putArray(std::string &Out, const std::vector<T> &V) {
  size_t Bytes = V.size() * sizeof(T);
  size_t At = Out.size();
  Out.resize(At + Bytes);
  std::memcpy(Out.data() + At, V.data(), Bytes);
}

template <typename T>
bool getArray(const std::string &In, size_t &Pos, std::vector<T> &V,
              size_t Count) {
  size_t Bytes = Count * sizeof(T);
  if (In.size() - Pos < Bytes)
    return false;
  V.resize(Count);
  std::memcpy(V.data(), In.data() + Pos, Bytes);
  Pos += Bytes;
  return true;
}

} // namespace

std::string TraceIndex::serialize() const {
  const size_t N = numBlocks();
  const size_t E = numEvents();
  std::string Out(IdxMagic, 4);
  Out.push_back(static_cast<char>(
      Directory.empty() ? IdxVersionPlain : IdxVersionSegmented));
  putVarint(Out, N);
  putVarint(Out, E);
  putVarint(Out, TotalInsts);
  putVarint(Out, TakenEvents);
  if (!Directory.empty()) {
    putVarint(Out, SegmentBudget);
    putVarint(Out, Directory.size());
    for (const SegmentBase &S : Directory) {
      putVarint(Out, S.Events);
      putVarint(Out, S.BaseInsts);
      putVarint(Out, S.BaseTaken);
    }
  }
  putArray(Out, BlockBegin);
  putArray(Out, OccPos);
  putArray(Out, TakenPre);
  putArray(Out, InstsPre);
  putArray(Out, GlobalInsts);
  putArray(Out, GlobalTaken);
  return Out;
}

bool TraceIndex::parse(const std::string &Bytes, TraceIndex &Out,
                       std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (Bytes.size() < 5 || Bytes.compare(0, 4, IdxMagic, 4) != 0)
    return Fail("bad index magic");
  const uint8_t Ver = static_cast<uint8_t>(Bytes[4]);
  if (Ver != IdxVersionPlain && Ver != IdxVersionSegmented)
    return Fail("unsupported index version");
  size_t Pos = 5;
  uint64_t N = 0, E = 0;
  TraceIndex Idx;
  if (!getVarint(Bytes, Pos, N) || !getVarint(Bytes, Pos, E) ||
      !getVarint(Bytes, Pos, Idx.TotalInsts) ||
      !getVarint(Bytes, Pos, Idx.TakenEvents))
    return Fail("truncated index header");
  if (E >= (1ull << 32) || N > E + 1 || E * 4 > Bytes.size())
    return Fail("implausible index dimensions");
  if (Ver == IdxVersionSegmented) {
    uint64_t NumSegments = 0;
    if (!getVarint(Bytes, Pos, Idx.SegmentBudget) ||
        !getVarint(Bytes, Pos, NumSegments))
      return Fail("truncated index segment directory");
    // A segment holds at least one event, so more segments than events
    // (or than a third of the directory bytes) marks corruption before
    // any allocation is sized from an attacker-controlled count.
    if (NumSegments > E || NumSegments > Bytes.size() / 3)
      return Fail("implausible index segment count");
    if (NumSegments > 0 && Idx.SegmentBudget == 0)
      return Fail("index segment directory with zero budget");
    Idx.Directory.resize(NumSegments);
    uint64_t SumEvents = 0, RunInsts = 0, RunTaken = 0;
    for (uint64_t S = 0; S < NumSegments; ++S) {
      uint64_t Events = 0, BaseInsts = 0, BaseTaken = 0;
      if (!getVarint(Bytes, Pos, Events) ||
          !getVarint(Bytes, Pos, BaseInsts) ||
          !getVarint(Bytes, Pos, BaseTaken))
        return Fail("truncated index segment directory");
      // Zero-length and oversized entries are rejected per row, before
      // the uint32 narrowing below and before SumEvents can wrap.
      if (Events == 0 || Events > Idx.SegmentBudget || Events > E)
        return Fail("index segment event count outside budget");
      if (BaseInsts < RunInsts || BaseTaken < RunTaken)
        return Fail("index segment bases not monotone");
      Idx.Directory[S] = {static_cast<uint32_t>(Events), BaseInsts,
                          BaseTaken};
      SumEvents += Events;
      if (SumEvents > E)
        return Fail("index segment directory disagrees with event count");
      RunInsts = BaseInsts;
      RunTaken = BaseTaken;
    }
    if (SumEvents != E)
      return Fail("index segment directory disagrees with event count");
    if (RunInsts > Idx.TotalInsts || RunTaken > Idx.TakenEvents)
      return Fail("index segment bases exceed trace totals");
  }
  if (!getArray(Bytes, Pos, Idx.BlockBegin, N + 1) ||
      !getArray(Bytes, Pos, Idx.OccPos, E) ||
      !getArray(Bytes, Pos, Idx.TakenPre, E + N) ||
      !getArray(Bytes, Pos, Idx.InstsPre, E + N) ||
      !getArray(Bytes, Pos, Idx.GlobalInsts, E + 1) ||
      !getArray(Bytes, Pos, Idx.GlobalTaken, E + 1))
    return Fail("truncated index payload");
  if (Pos != Bytes.size())
    return Fail("trailing bytes after index");
  if (Idx.BlockBegin.front() != 0 || Idx.BlockBegin.back() != E)
    return Fail("corrupt index offsets");
  for (size_t B = 0; B < N; ++B)
    if (Idx.BlockBegin[B] > Idx.BlockBegin[B + 1])
      return Fail("corrupt index offsets");
  if (Idx.GlobalInsts.back() != Idx.TotalInsts ||
      Idx.GlobalTaken.back() != Idx.TakenEvents)
    return Fail("index totals disagree with prefix sums");
  Out = std::move(Idx);
  return true;
}

bool TraceIndex::matches(const BlockTrace &Trace) const {
  return numBlocks() == Trace.numBlocks() &&
         numEvents() == Trace.numEvents() &&
         TotalInsts == Trace.totalInsts() &&
         TakenEvents == Trace.takenEvents();
}
