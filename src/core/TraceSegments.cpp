//===- core/TraceSegments.cpp - Sharded TPDT v3 trace container ------------===//

#include "core/TraceSegments.h"

#include "support/Compression.h"
#include "support/Varint.h"

#include <cassert>
#include <cstdlib>

using namespace tpdbt;
using namespace tpdbt::core;
using namespace tpdbt::guest;

uint64_t tpdbt::core::segmentEventBudget() {
  const char *Env = std::getenv("TPDBT_SEGMENT_EVENTS");
  if (!Env || !*Env)
    return DefaultSegmentEvents;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Env, &End, 10);
  if (End == Env || *End != '\0')
    return DefaultSegmentEvents;
  if (V == 0)
    return 0; // kill switch: monolithic record path, TPDT v2 on disk
  return std::max<uint64_t>(V, MinSegmentEvents);
}

std::string tpdbt::core::encodeSegmentEvents(const TraceEvent *Ev, size_t N) {
  std::string Out;
  Out.reserve(N * 3); // typical traces take 2-3 bytes per event
  int64_t PrevBlock = 0;
  for (size_t I = 0; I < N; ++I) {
    const int64_t Delta = static_cast<int64_t>(Ev[I].Block) - PrevBlock;
    PrevBlock = static_cast<int64_t>(Ev[I].Block);
    putVarint(Out, (zigzagEncode(Delta) << 2) | Ev[I].Branch);
    putVarint(Out, Ev[I].Insts);
  }
  return Out;
}

bool tpdbt::core::decodeSegmentEvents(const std::string &Raw,
                                      uint64_t ExpectEvents, size_t NumBlocks,
                                      std::vector<TraceEvent> &Out,
                                      std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  Out.reserve(Out.size() + ExpectEvents);
  size_t Pos = 0;
  int64_t PrevBlock = 0;
  for (uint64_t I = 0; I < ExpectEvents; ++I) {
    uint64_t Packed = 0, Insts = 0;
    if (!getVarint(Raw, Pos, Packed) || !getVarint(Raw, Pos, Insts))
      return Fail("truncated segment event");
    TraceEvent E;
    E.Branch = static_cast<uint8_t>(Packed & 3);
    if (E.Branch > 2)
      return Fail("corrupt branch bits");
    const int64_t Block = PrevBlock + zigzagDecode(Packed >> 2);
    if (Block < 0 || static_cast<uint64_t>(Block) >= NumBlocks)
      return Fail("block id out of range");
    if (Insts >= (uint64_t(1) << 32))
      return Fail("event instruction count overflows");
    PrevBlock = Block;
    E.Block = static_cast<BlockId>(Block);
    E.Insts = static_cast<uint32_t>(Insts);
    Out.push_back(E);
  }
  if (Pos != Raw.size())
    return Fail("trailing bytes after segment events");
  return true;
}

namespace {

constexpr char Magic[4] = {'T', 'P', 'D', 'T'};
constexpr uint8_t SegmentedVersion = 3;

} // namespace

std::string tpdbt::core::assembleSegmentedTrace(
    size_t NumBlocks, uint64_t NumEvents, uint64_t TotalInsts,
    uint64_t Budget, const std::vector<profile::BlockCounters> &Final,
    const std::vector<TraceSegmentRecord> &Segments) {
  std::string Out(Magic, 4);
  Out.push_back(static_cast<char>(SegmentedVersion));
  putVarint(Out, NumBlocks);
  putVarint(Out, NumEvents);
  putVarint(Out, TotalInsts);
  putVarint(Out, Budget);
  putVarint(Out, Segments.size());
  for (size_t B = 0; B < NumBlocks; ++B) {
    putVarint(Out, Final[B].Use);
    putVarint(Out, Final[B].Taken);
  }
  for (const TraceSegmentRecord &S : Segments) {
    putVarint(Out, S.Events);
    putVarint(Out, S.Payload.size());
    putVarint(Out, S.BaseInsts);
    putVarint(Out, S.BaseTaken);
  }
  for (const TraceSegmentRecord &S : Segments)
    Out += S.Payload;
  return Out;
}

uint64_t SegmentedTraceHeader::takenEvents() const {
  uint64_t Taken = 0;
  for (const profile::BlockCounters &C : Final)
    Taken += C.Taken;
  return Taken;
}

bool tpdbt::core::parseSegmentedHeader(const std::string &Bytes,
                                       uint64_t FileSize,
                                       SegmentedTraceHeader &Out,
                                       std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (Bytes.size() < 5 || Bytes.compare(0, 4, Magic, 4) != 0)
    return Fail("bad trace magic");
  if (static_cast<uint8_t>(Bytes[4]) != SegmentedVersion)
    return Fail("not a segmented trace");
  size_t Pos = 5;
  SegmentedTraceHeader H;
  uint64_t NumSegments = 0;
  if (!getVarint(Bytes, Pos, H.NumBlocks) ||
      !getVarint(Bytes, Pos, H.NumEvents) ||
      !getVarint(Bytes, Pos, H.TotalInsts) ||
      !getVarint(Bytes, Pos, H.SegmentBudget) ||
      !getVarint(Bytes, Pos, NumSegments))
    return Fail("truncated segmented trace header");
  // Each block costs >= 2 counter-table bytes and each segment >= 4
  // directory bytes plus a payload frame, so counts exceeding those
  // budgets against the file size mark corruption before any allocation
  // is sized from an attacker-controlled field. Segments hold at least
  // one event each.
  if (H.NumBlocks > FileSize / 2 || H.NumEvents >= (uint64_t(1) << 32) ||
      NumSegments > H.NumEvents || NumSegments > FileSize / 4)
    return Fail("implausible segmented trace header");
  if (H.SegmentBudget == 0)
    return Fail("segmented trace with zero budget");

  H.Final.resize(H.NumBlocks);
  uint64_t SumUse = 0;
  for (uint64_t B = 0; B < H.NumBlocks; ++B) {
    if (!getVarint(Bytes, Pos, H.Final[B].Use) ||
        !getVarint(Bytes, Pos, H.Final[B].Taken))
      return Fail("truncated trace counter table");
    // Per-entry bounds before accumulating, so a crafted huge counter can
    // never wrap SumUse back onto the expected total.
    if (H.Final[B].Use > H.NumEvents || H.Final[B].Taken > H.Final[B].Use)
      return Fail("counter table entry exceeds event count");
    SumUse += H.Final[B].Use;
    if (SumUse > H.NumEvents)
      return Fail("counter table disagrees with event count");
  }
  if (SumUse != H.NumEvents)
    return Fail("counter table disagrees with event count");

  H.Directory.resize(NumSegments);
  uint64_t SumEvents = 0, SumPayload = 0, RunInsts = 0, RunTaken = 0;
  for (uint64_t S = 0; S < NumSegments; ++S) {
    SegmentedTraceHeader::Entry &Ent = H.Directory[S];
    uint64_t Events = 0;
    if (!getVarint(Bytes, Pos, Events) ||
        !getVarint(Bytes, Pos, Ent.PayloadBytes) ||
        !getVarint(Bytes, Pos, Ent.BaseInsts) ||
        !getVarint(Bytes, Pos, Ent.BaseTaken))
      return Fail("truncated segment directory");
    if (Events == 0 || Events > H.SegmentBudget || Events > H.NumEvents)
      return Fail("segment event count outside budget");
    // A segment holds >= 1 event, so its compressed payload is never
    // empty; and no payload can exceed the file that contains it. Both
    // checks keep readSegment's payload buffer (sized from this field)
    // bounded by the real file size.
    if (Ent.PayloadBytes == 0 || Ent.PayloadBytes > FileSize)
      return Fail("segment payload size implausible");
    if (Ent.BaseInsts < RunInsts || Ent.BaseTaken < RunTaken)
      return Fail("segment bases not monotone");
    if (S == 0 && (Ent.BaseInsts != 0 || Ent.BaseTaken != 0))
      return Fail("first segment bases nonzero");
    Ent.Events = static_cast<uint32_t>(Events);
    SumEvents += Events;
    SumPayload += Ent.PayloadBytes;
    if (SumEvents > H.NumEvents || SumPayload > FileSize)
      return Fail("segment directory sums exceed file");
    RunInsts = Ent.BaseInsts;
    RunTaken = Ent.BaseTaken;
  }
  if (SumEvents != H.NumEvents)
    return Fail("segment directory disagrees with event count");
  if (RunInsts > H.TotalInsts || RunTaken > H.takenEvents())
    return Fail("segment bases exceed trace totals");

  H.PayloadStart = Pos;
  uint64_t Offset = Pos;
  for (SegmentedTraceHeader::Entry &Ent : H.Directory) {
    Ent.PayloadOffset = Offset;
    Offset += Ent.PayloadBytes;
  }
  // The payload frames must tile the rest of the file exactly; a short
  // file is torn, a long one has trailing bytes.
  if (Offset != FileSize)
    return Fail("segment payloads disagree with file size");
  Out = std::move(H);
  return true;
}

bool SegmentedTraceReader::open(const std::string &Path,
                                SegmentedTraceReader &Out,
                                std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  SegmentedTraceReader R;
  R.File.open(Path, std::ios::binary);
  if (!R.File)
    return Fail("cannot open trace file");
  R.File.seekg(0, std::ios::end);
  const uint64_t FileSize = static_cast<uint64_t>(R.File.tellg());
  // Grow-and-retry header read: varints make the header length
  // data-dependent, so read a prefix, try to parse, and double until the
  // parse stops failing or the prefix is the whole file (then the
  // failure is real corruption, not truncation).
  std::string Prefix;
  for (uint64_t Want = std::min<uint64_t>(FileSize, 64 * 1024);;
       Want = std::min<uint64_t>(FileSize, Want * 2)) {
    Prefix.resize(Want);
    R.File.seekg(0);
    if (Want && !R.File.read(Prefix.data(), static_cast<std::streamsize>(Want)))
      return Fail("cannot read trace file");
    std::string ParseError;
    if (parseSegmentedHeader(Prefix, FileSize, R.Header, &ParseError)) {
      R.File.clear();
      Out = std::move(R);
      return true;
    }
    if (Want == FileSize) {
      if (Error)
        *Error = ParseError;
      return false;
    }
  }
}

bool SegmentedTraceReader::readSegment(size_t I, std::vector<TraceEvent> &Out,
                                       std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  assert(I < Header.Directory.size() && "segment index out of range");
  const SegmentedTraceHeader::Entry &Ent = Header.Directory[I];
  Compressed.resize(Ent.PayloadBytes);
  File.clear();
  File.seekg(static_cast<std::streamoff>(Ent.PayloadOffset));
  if (Ent.PayloadBytes &&
      !File.read(Compressed.data(),
                 static_cast<std::streamsize>(Ent.PayloadBytes)))
    return Fail("cannot read segment payload");
  std::string Raw;
  if (!decompressBytes(Compressed, Raw, Error))
    return false;
  Out.clear();
  if (!decodeSegmentEvents(Raw, Ent.Events, Header.NumBlocks, Out, Error))
    return false;
  // The segment's own sums must land exactly on the next directory row's
  // bases (or the trace totals for the last segment) — a purely local
  // check, so random-access reads stay O(segment).
  uint64_t SegInsts = 0, SegTaken = 0;
  for (const TraceEvent &E : Out) {
    SegInsts += E.Insts;
    SegTaken += E.Branch == 2 ? 1 : 0;
  }
  const bool Last = I + 1 == Header.Directory.size();
  const uint64_t WantInsts =
      (Last ? Header.TotalInsts : Header.Directory[I + 1].BaseInsts) -
      Ent.BaseInsts;
  const uint64_t WantTaken =
      (Last ? Header.takenEvents() : Header.Directory[I + 1].BaseTaken) -
      Ent.BaseTaken;
  if (SegInsts != WantInsts || SegTaken != WantTaken)
    return Fail("segment events disagree with directory bases");
  return true;
}

bool tpdbt::core::replaySweepStreamed(SegmentedTraceReader &Reader,
                                      const Program &P,
                                      const std::vector<uint64_t> &Thresholds,
                                      const dbt::DbtOptions &Base,
                                      SweepResult &Out, std::string *Error) {
  const SegmentedTraceHeader &H = Reader.header();
  assert(H.NumBlocks == P.numBlocks() &&
         "trace does not match the program");
  std::vector<TraceEvent> Buf;
  size_t Seg = 0;
  bool Failed = false;
  SweepResult R = pumpSweepChunks(
      P, Thresholds, Base, H.NumEvents, H.TotalInsts, H.takenEvents(),
      H.Final, [&](const TraceEvent *&Chunk) -> size_t {
        if (Failed || Seg >= Reader.numSegments())
          return 0;
        if (!Reader.readSegment(Seg++, Buf, Error)) {
          Failed = true;
          return 0;
        }
        Chunk = Buf.data();
        return Buf.size();
      });
  if (Failed)
    return false;
  Out = std::move(R);
  return true;
}
