//===- core/TraceIndex.h - Analytic replay index over a trace ---*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A positional index over one recorded BlockTrace that turns the event
/// stream into O(1)/O(log) queries, so non-adaptive translation policies
/// can be evaluated *analytically* instead of by pumping every event
/// through every policy (see core::replaySweep).
///
/// The key observation (paper Section 3.1): a block's counters freeze the
/// moment its use count reaches the retranslation threshold T, and for a
/// fixed trace that moment is a pure function of the trace — the position
/// of the block's T-th occurrence. The index therefore stores:
///
///  - per-block occurrence positions in CSR layout (one flat uint32_t
///    event-position array plus per-block begin offsets), giving the
///    freeze event of block b under threshold T as occ[b][T-1];
///  - per-block taken-bit and instruction prefix sums, giving any block's
///    counters "as of event p" as two prefix differences;
///  - global instruction/taken prefix sums over the whole stream for
///    closed-form tail accounting.
///
/// Building the index is two O(events) passes; it is built at most once
/// per trace (see BlockTrace::index()) and cached on disk as a sidecar
/// next to the .trace entry (see TraceCache and docs/CACHE_FORMAT.md).
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_CORE_TRACEINDEX_H
#define TPDBT_CORE_TRACEINDEX_H

#include "guest/Program.h"
#include "profile/Profile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tpdbt {
namespace core {

class BlockTrace;
struct TraceEvent;

/// Immutable positional index over one BlockTrace (see file comment).
/// Event positions are uint32_t; traces are capped well below 2^32 events
/// (the largest full-scale recording is ~10^8).
class TraceIndex {
public:
  /// Builds the index for \p Trace in two linear passes.
  static TraceIndex build(const BlockTrace &Trace);

  /// One segment's row in the index's segment directory: how many events
  /// the segment holds and the global prefix-sum bases at its start, so a
  /// segment-at-a-time consumer can fast-forward to any segment without
  /// touching the ones before it (mirrors the TPDT v3 directory).
  struct SegmentBase {
    uint32_t Events = 0;
    uint64_t BaseInsts = 0;
    uint64_t BaseTaken = 0;
  };

  /// The per-segment index material the streamed pipeline builds while a
  /// segment is still in flight: the segment's events grouped by block
  /// (a segment-local CSR), with global positions and the per-occurrence
  /// outcome/instruction payload needed to stitch the per-block prefix
  /// rows without re-touching the event stream.
  struct SegmentPart {
    std::vector<uint32_t> SegBegin; ///< NumBlocks+1 CSR offsets
    std::vector<uint32_t> Pos;      ///< global positions, grouped by block
    std::vector<uint8_t> Taken;     ///< parallel taken-outcome bits
    std::vector<uint32_t> Insts;    ///< parallel instruction counts
  };

  /// Indexes one segment: \p N events starting at global position
  /// \p BasePos, over a program of \p NumBlocks blocks. Pure function of
  /// the slice — safe to run concurrently with recording of later events.
  static SegmentPart buildPart(const TraceEvent *Ev, size_t N,
                               size_t NumBlocks, uint64_t BasePos);

  /// Assembles the full index from per-segment parts (in stream order):
  /// per-block rows are concatenations of the parts' block rows with the
  /// prefix sums continued across segment boundaries, and the global
  /// prefix arrays come from one linear pass over \p Trace. Produces the
  /// same queries as build(); the pipeline's differential tests pin that.
  /// \p Budget and \p Directory populate the TPDX v2 segment directory.
  static TraceIndex stitch(const BlockTrace &Trace, uint64_t Budget,
                           const std::vector<SegmentPart> &Parts,
                           std::vector<SegmentBase> Directory);

  /// The segment directory (empty for indexes built monolithically or
  /// loaded from a TPDX v1 sidecar).
  const std::vector<SegmentBase> &segmentDirectory() const {
    return Directory;
  }
  /// The event budget the segments were cut with (0 when no directory).
  uint64_t segmentBudget() const { return SegmentBudget; }

  size_t numBlocks() const { return BlockBegin.size() - 1; }
  size_t numEvents() const { return OccPos.size(); }
  uint64_t totalInsts() const { return TotalInsts; }
  uint64_t takenEvents() const { return TakenEvents; }

  /// Number of occurrences of block \p B in the trace (its final use
  /// count).
  uint32_t occurrences(guest::BlockId B) const {
    return BlockBegin[B + 1] - BlockBegin[B];
  }

  /// Event position of the (0-based) \p K-th occurrence of \p B. Under
  /// threshold T, position(B, T-1) is the event where B registers in the
  /// candidate pool and position(B, 2T-1) its registered-twice trigger.
  uint32_t position(guest::BlockId B, uint32_t K) const {
    return OccPos[BlockBegin[B] + K];
  }

  /// Occurrences of \p B at positions <= \p Pos: the shared use counter
  /// right after the event at \p Pos executes. O(log occurrences).
  uint32_t usesThrough(guest::BlockId B, uint32_t Pos) const;

  /// The occurrence rank of \p B's event at position \p Pos (which must be
  /// an occurrence of \p B). O(log occurrences).
  uint32_t occurrenceAt(guest::BlockId B, uint32_t Pos) const;

  /// Taken-branch outcomes among the first \p K occurrences of \p B.
  uint32_t takenOfFirst(guest::BlockId B, uint32_t K) const {
    return TakenPre[prefBegin(B) + K];
  }

  /// Guest instructions executed by the first \p K occurrences of \p B.
  uint64_t instsOfFirst(guest::BlockId B, uint32_t K) const {
    return InstsPre[prefBegin(B) + K];
  }

  /// Shared counters of \p B as of (and including) the event at \p Pos —
  /// what the event pump's Shared[B] holds right after that event.
  profile::BlockCounters countersThrough(guest::BlockId B,
                                         uint32_t Pos) const {
    uint32_t K = usesThrough(B, Pos);
    return {K, takenOfFirst(B, K)};
  }

  /// First occurrence rank >= \p K of \p B whose taken outcome differs
  /// from \p Taken; occurrences(B) when the rest of the stream matches.
  /// O(log occurrences) via the taken-bit prefix sums — this is what makes
  /// single-node loop regions evaluable in closed form.
  uint32_t firstOutcomeChange(guest::BlockId B, uint32_t K,
                              bool Taken) const;

  /// Guest instructions executed by events at positions < \p Pos.
  uint64_t instsBefore(uint32_t Pos) const { return GlobalInsts[Pos]; }
  /// Taken conditional branches among events at positions < \p Pos.
  uint32_t takenBefore(uint32_t Pos) const { return GlobalTaken[Pos]; }

  /// Serializes to the TPDX sidecar format (see docs/CACHE_FORMAT.md):
  /// v2 when the index carries a segment directory, v1 otherwise.
  /// parse() round-trips and accepts both versions.
  std::string serialize() const;
  static bool parse(const std::string &Bytes, TraceIndex &Out,
                    std::string *Error);

  /// True when the index plausibly describes \p Trace (dimension and
  /// total checks; guards against stale or mismatched sidecars).
  bool matches(const BlockTrace &Trace) const;

private:
  /// Start of block \p B's prefix-sum row. Each row holds occurrences+1
  /// entries (a leading zero), so rows are shifted by one slot per block.
  size_t prefBegin(guest::BlockId B) const {
    return static_cast<size_t>(BlockBegin[B]) + B;
  }

  /// CSR offsets: block B's occurrence positions are
  /// OccPos[BlockBegin[B] .. BlockBegin[B+1]).
  std::vector<uint32_t> BlockBegin;
  std::vector<uint32_t> OccPos;
  /// Per-block prefix sums over occurrence outcomes, rows addressed by
  /// prefBegin(); entry [row + k] covers the first k occurrences.
  std::vector<uint32_t> TakenPre;
  std::vector<uint64_t> InstsPre;
  /// Global prefix sums over event positions.
  std::vector<uint64_t> GlobalInsts;
  std::vector<uint32_t> GlobalTaken;
  uint64_t TotalInsts = 0;
  uint64_t TakenEvents = 0;
  /// TPDX v2 segment directory (empty on v1 / monolithic builds).
  std::vector<SegmentBase> Directory;
  uint64_t SegmentBudget = 0;
};

} // namespace core
} // namespace tpdbt

#endif // TPDBT_CORE_TRACEINDEX_H
