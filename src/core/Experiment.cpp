//===- core/Experiment.cpp - Cached experiment context ---------------------===//

#include "core/Experiment.h"

#include "core/TraceSegments.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/TextFile.h"
#include "support/ThreadPool.h"
#include "workloads/BenchSpec.h"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>

using namespace tpdbt;
using namespace tpdbt::core;
using namespace tpdbt::workloads;

const std::vector<uint64_t> &tpdbt::core::paperThresholds() {
  static const std::vector<uint64_t> T = {100,   200,   500,    1000,
                                          2000,  5000,  10000,  20000,
                                          40000, 80000, 160000, 1000000,
                                          4000000};
  return T;
}

const std::vector<uint64_t> &tpdbt::core::performanceThresholds() {
  static const std::vector<uint64_t> T = [] {
    std::vector<uint64_t> All = {1, 50};
    for (uint64_t V : paperThresholds())
      All.push_back(V);
    return All;
  }();
  return T;
}

ExperimentConfig::ExperimentConfig() : Thresholds(performanceThresholds()) {}

ExperimentConfig ExperimentConfig::fromEnv() {
  ExperimentConfig C;
  if (const char *S = std::getenv("TPDBT_SCALE")) {
    double V = std::atof(S);
    if (V > 0.0)
      C.Scale = V;
  }
  if (const char *Dir = std::getenv("TPDBT_CACHE_DIR")) {
    if (std::strcmp(Dir, "off") == 0)
      C.CacheDir.clear();
    else
      C.CacheDir = Dir;
  }
  if (const char *Jobs = std::getenv("TPDBT_JOBS")) {
    int V = std::atoi(Jobs);
    if (V > 0)
      C.Jobs = static_cast<unsigned>(V);
  }
  C.Sample = sample::SampleConfig::fromEnv();
  return C;
}

unsigned ExperimentConfig::effectiveJobs() const {
  return Jobs ? Jobs : ThreadPool::defaultThreads();
}

uint64_t ExperimentConfig::executionFingerprint() const {
  uint64_t H = 0x7bd8u; // execution-layer salt; bump on trace changes
  uint64_t ScaleBits;
  static_assert(sizeof(double) == sizeof(uint64_t));
  std::memcpy(&ScaleBits, &Scale, 8);
  return combineSeeds(H, ScaleBits);
}

uint64_t ExperimentConfig::policyFingerprint() const {
  uint64_t H = 0x7bd9u; // policy-layer salt; bump on snapshot changes
  for (uint64_t T : Thresholds)
    H = combineSeeds(H, T);
  H = combineSeeds(H, Dbt.PoolLimit);
  uint64_t MinProbBits;
  std::memcpy(&MinProbBits, &Dbt.Formation.MinBranchProb, 8);
  H = combineSeeds(H, MinProbBits);
  H = combineSeeds(H, Dbt.Formation.MaxRegionBlocks);
  H = combineSeeds(H, Dbt.Formation.EnableDiamonds ? 1 : 0);
  H = combineSeeds(H, Dbt.Formation.AllowDuplication ? 1 : 0);
  H = combineSeeds(H, Dbt.Cost.ColdPerInst);
  H = combineSeeds(H, Dbt.Cost.ProfilePerBlock);
  H = combineSeeds(H, Dbt.Cost.OptPerInst);
  H = combineSeeds(H, Dbt.Cost.OptOffTracePerInst);
  H = combineSeeds(H, Dbt.Cost.SideExitPenalty);
  H = combineSeeds(H, Dbt.Cost.LoopExitPenalty);
  H = combineSeeds(H, Dbt.Cost.OptimizePerInst);
  H = combineSeeds(H, Dbt.Adaptive.Enabled ? 1 : 0);
  H = combineSeeds(H, Dbt.Adaptive.MinEntries);
  uint64_t MinCompletionBits;
  std::memcpy(&MinCompletionBits, &Dbt.Adaptive.MinCompletion, 8);
  H = combineSeeds(H, MinCompletionBits);
  H = combineSeeds(H, Dbt.Adaptive.MonitorLoops ? 1 : 0);
  H = combineSeeds(H,
                   static_cast<uint64_t>(Dbt.Adaptive.MaxRetranslations));
  return H;
}

uint64_t ExperimentConfig::fingerprint() const {
  // Jobs is deliberately excluded: the job count never changes results,
  // so caches stay valid across TPDBT_JOBS settings.
  return combineSeeds(executionFingerprint(), policyFingerprint());
}

ExperimentContext::ExperimentContext(ExperimentConfig Config)
    : Config(std::move(Config)),
      Traces(std::make_shared<TraceCache>(this->Config.CacheDir)) {}

ExperimentContext::ExperimentContext(ExperimentConfig Config,
                                     std::shared_ptr<TraceCache> Shared)
    : Config(std::move(Config)), Traces(std::move(Shared)) {
  assert(Traces && "shared trace cache must not be null");
}

ExperimentContext::BenchData &
ExperimentContext::data(const std::string &Name) {
  BenchData *D;
  {
    std::lock_guard<std::mutex> Guard(DataLock);
    D = &Data[Name];
  }
  std::lock_guard<std::mutex> Guard(D->Lock);
  if (!D->Bench) {
    const BenchSpec *Spec = findSpec(Name);
    assert(Spec && "unknown benchmark name");
    BenchSpec Scaled =
        Config.Scale == 1.0 ? *Spec : scaledSpec(*Spec, Config.Scale);
    D->Bench = std::make_unique<GeneratedBenchmark>(generateBenchmark(Scaled));
    D->Graph = std::make_unique<cfg::Cfg>(D->Bench->Ref);
  }
  return *D;
}

const GeneratedBenchmark &
ExperimentContext::benchmark(const std::string &Name) {
  return *data(Name).Bench;
}

const cfg::Cfg &ExperimentContext::graph(const std::string &Name) {
  return *data(Name).Graph;
}

std::string ExperimentContext::cachePath(const std::string &Name,
                                         uint64_t SpecFp,
                                         const std::string &Input,
                                         uint64_t Threshold) const {
  uint64_t Fp = combineSeeds(Config.fingerprint(), SpecFp);
  return formatString("%s/%s.%s.T%llu.%016llx.prof", Config.CacheDir.c_str(),
                      Name.c_str(), Input.c_str(),
                      static_cast<unsigned long long>(Threshold),
                      static_cast<unsigned long long>(Fp));
}

bool ExperimentContext::loadCached(const std::string &Name, BenchData &D) {
  if (Config.CacheDir.empty())
    return false;
  uint64_t SpecFp = specFingerprint(D.Bench->Spec);
  auto LoadOne = [&](const std::string &Input, uint64_t T,
                     profile::ProfileSnapshot &Out) {
    auto Text = readTextFile(cachePath(Name, SpecFp, Input, T));
    if (!Text)
      return false;
    if (!profile::parseSnapshot(*Text, Out, nullptr)) {
      // Torn or corrupt entry: count it and recompute instead of failing.
      Stats.CorruptEntries.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  };
  auto LoadAll = [&] {
    for (uint64_t T : Config.Thresholds) {
      profile::ProfileSnapshot S;
      if (!LoadOne("ref", T, S))
        return false;
      D.Inips[T] = std::move(S);
    }
    if (!LoadOne("ref", 0, D.Avep))
      return false;
    if (!LoadOne("train", 0, D.Train))
      return false;
    return true;
  };
  if (LoadAll())
    return true;
  // Leave no partially-loaded state behind for the recomputation path.
  D.Inips.clear();
  D.Avep = profile::ProfileSnapshot();
  D.Train = profile::ProfileSnapshot();
  return false;
}

void ExperimentContext::storeCached(const std::string &Name,
                                    const BenchData &D) const {
  if (Config.CacheDir.empty())
    return;
  if (!ensureDirectory(Config.CacheDir))
    return;
  uint64_t SpecFp = specFingerprint(D.Bench->Spec);
  for (const auto &[T, S] : D.Inips)
    writeTextFileAtomic(cachePath(Name, SpecFp, "ref", T),
                        profile::printSnapshot(S));
  writeTextFileAtomic(cachePath(Name, SpecFp, "ref", 0),
                      profile::printSnapshot(D.Avep));
  writeTextFileAtomic(cachePath(Name, SpecFp, "train", 0),
                      profile::printSnapshot(D.Train));
}

void ExperimentContext::ensureProfiles(const std::string &Name,
                                       BenchData &D, unsigned ReplayJobs) {
  if (D.ProfilesReady.load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> Guard(D.Lock);
  if (D.ProfilesReady.load(std::memory_order_relaxed))
    return; // another worker finished while we waited on the lock
  if (sampling()) {
    ensureEstimates(Name, D, ReplayJobs);
    D.ProfilesReady.store(true, std::memory_order_release);
    return;
  }
  if (loadCached(Name, D)) {
    Stats.CacheHits.fetch_add(1, std::memory_order_relaxed);
    D.ProfilesReady.store(true, std::memory_order_release);
    return;
  }
  Stats.CacheMisses.fetch_add(1, std::memory_order_relaxed);

  const GeneratedBenchmark &B = *D.Bench;
  uint64_t MaxBlocks = B.Spec.MaxBlockEvents;
  // Trace-first: fetch (or record once) the execution's event stream, then
  // derive every profile by replay. The trace key covers exactly what
  // shapes the stream — spec, scale, and event budget — so re-running with
  // different thresholds or cost knobs hits the trace layer and never
  // re-interprets.
  uint64_t ExecFp = combineSeeds(
      combineSeeds(Config.executionFingerprint(), specFingerprint(B.Spec)),
      MaxBlocks);
  auto Start = std::chrono::steady_clock::now();

  auto timedReplay = [&](const BlockTrace &Trace, const guest::Program &P,
                         const std::vector<uint64_t> &Thresholds) {
    // The analytic path builds the trace's index on first use; when no
    // cached index is attached (memory-only cache, or an adopted sidecar
    // failed), force that build here under the index timer so
    // ReplayMicros measures replay alone, not index construction.
    if (!Config.Dbt.Adaptive.Enabled && !Trace.sharedIndex()) {
      auto I0 = std::chrono::steady_clock::now();
      Trace.index();
      auto I1 = std::chrono::steady_clock::now();
      Traces->noteIndexBuild(
          std::chrono::duration_cast<std::chrono::microseconds>(I1 - I0)
              .count());
    }
    auto T0 = std::chrono::steady_clock::now();
    SweepResult R = replaySweep(Trace, P, Thresholds, Config.Dbt, ReplayJobs);
    auto T1 = std::chrono::steady_clock::now();
    Stats.ReplayMicros.fetch_add(
        std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
            .count(),
        std::memory_order_relaxed);
    return R;
  };

  std::shared_ptr<const BlockTrace> RefTrace =
      Traces->get(Name, "ref", ExecFp, B.Ref, MaxBlocks);
  SweepResult RefSweep = timedReplay(*RefTrace, B.Ref, Config.Thresholds);
  for (size_t I = 0; I < Config.Thresholds.size(); ++I) {
    profile::ProfileSnapshot &S = RefSweep.PerThreshold[I];
    S.Benchmark = Name;
    S.Input = "ref";
    D.Inips[Config.Thresholds[I]] = std::move(S);
  }
  RefSweep.Average.Benchmark = Name;
  RefSweep.Average.Input = "ref";
  D.Avep = std::move(RefSweep.Average);

  std::shared_ptr<const BlockTrace> TrainTrace =
      Traces->get(Name, "train", ExecFp, B.Train, MaxBlocks);
  SweepResult TrainSweep = timedReplay(*TrainTrace, B.Train, {});
  TrainSweep.Average.Benchmark = Name;
  TrainSweep.Average.Input = "train";
  D.Train = std::move(TrainSweep.Average);

  auto End = std::chrono::steady_clock::now();
  uint64_t TotalMicros =
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count();
  Stats.SweepsRun.fetch_add(2, std::memory_order_relaxed);
  Stats.SweepMicros.fetch_add(TotalMicros, std::memory_order_relaxed);

  storeCached(Name, D);
  D.ProfilesReady.store(true, std::memory_order_release);
}

bool ExperimentContext::sampling() const {
  // Adaptive re-optimization reshapes the event stream itself; the
  // estimator has no model for it, so adaptive configs stay exact.
  return Config.Sample.enabled() && !Config.Dbt.Adaptive.Enabled;
}

void ExperimentContext::ensureEstimates(const std::string &Name,
                                        BenchData &D, unsigned ReplayJobs) {
  const GeneratedBenchmark &B = *D.Bench;
  const uint64_t MaxBlocks = B.Spec.MaxBlockEvents;
  const uint64_t ExecFp = combineSeeds(
      combineSeeds(Config.executionFingerprint(), specFingerprint(B.Spec)),
      MaxBlocks);
  // Per-benchmark seed: figure suites stay deterministic while different
  // benchmarks draw independent samples.
  const uint64_t BenchSeed =
      combineSeeds(Config.Sample.Seed, specFingerprint(B.Spec));
  auto Start = std::chrono::steady_clock::now();

  // Reference input: estimate the whole threshold sweep from a stratified
  // segment sample. Disk-first — a warm TPDT v3 entry streams its
  // directory and only the drawn segments, so the unsampled payload is
  // never decompressed (the out-of-core win). Cold traces record once
  // through the shared cache, then sample the in-memory event vector at
  // the same segment budget the writer uses, so cold and warm runs draw
  // the identical sample.
  sample::SampledSweep Sweep;
  std::string Error;
  bool Ok = false;
  {
    SegmentedTraceReader Reader;
    if (Traces->openSegmented(Name, "ref", ExecFp, Reader, nullptr)) {
      sample::DiskSegmentSource Src(Reader);
      Ok = sample::sampledSweep(Src, B.Ref, Config.Thresholds, Config.Dbt,
                                Config.Sample, BenchSeed, ReplayJobs, Sweep,
                                &Error);
    }
  }
  if (!Ok) {
    std::shared_ptr<const BlockTrace> Trace =
        Traces->get(Name, "ref", ExecFp, B.Ref, MaxBlocks);
    uint64_t Budget = segmentEventBudget();
    if (Budget == 0)
      Budget = DefaultSegmentEvents; // v2 kill switch: slice as v3 would
    sample::MemorySegmentSource Src(*Trace, Budget);
    Ok = sample::sampledSweep(Src, B.Ref, Config.Thresholds, Config.Dbt,
                              Config.Sample, BenchSeed, ReplayJobs, Sweep,
                              &Error);
  }
  assert(Ok && "sampled sweep cannot fail on a recorded trace");
  (void)Ok;
  Traces->noteSampleReplay(Sweep.Stats.Decoded,
                           Sweep.Stats.Segments - Sweep.Stats.Decoded);

  for (size_t I = 0; I < Config.Thresholds.size(); ++I) {
    profile::ProfileSnapshot &S = Sweep.PerThreshold[I];
    S.Benchmark = Name;
    S.Input = "ref";
    D.Inips[Config.Thresholds[I]] = std::move(S);
  }
  Sweep.Average.Benchmark = Name;
  Sweep.Average.Input = "ref";
  D.Avep = std::move(Sweep.Average);
  D.Sampled = std::make_unique<SampledProfiles>();
  D.Sampled->Replicates = std::move(Sweep.Replicates);
  D.Sampled->Stats = Sweep.Stats;

  // Training input: only the profiling-only average is needed, and it is
  // exact from stream totals — a warm v3 entry answers it from the header
  // alone, decoding nothing.
  {
    const cfg::Cfg TrainGraph(B.Train);
    SegmentedTraceReader Reader;
    if (Traces->openSegmented(Name, "train", ExecFp, Reader, nullptr)) {
      const SegmentedTraceHeader &H = Reader.header();
      D.Train = sample::profilingAverage(B.Train, TrainGraph, Config.Dbt,
                                         H.Final, H.NumEvents,
                                         H.takenEvents(), H.TotalInsts);
      Traces->noteSampleReplay(0, Reader.numSegments());
    } else {
      std::shared_ptr<const BlockTrace> Trace =
          Traces->get(Name, "train", ExecFp, B.Train, MaxBlocks);
      D.Train = sample::profilingAverage(
          B.Train, TrainGraph, Config.Dbt, Trace->finalCounts(),
          Trace->numEvents(), Trace->takenEvents(), Trace->totalInsts());
    }
    D.Train.Benchmark = Name;
    D.Train.Input = "train";
  }

  auto End = std::chrono::steady_clock::now();
  Stats.SweepsRun.fetch_add(2, std::memory_order_relaxed);
  Stats.SweepMicros.fetch_add(
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count(),
      std::memory_order_relaxed);
  Stats.SampleStrata.fetch_add(D.Sampled->Stats.Strata,
                               std::memory_order_relaxed);
}

const SampledProfiles *ExperimentContext::sampled(const std::string &Name) {
  if (!sampling())
    return nullptr;
  BenchData &D = data(Name);
  ensureProfiles(Name, D, Config.effectiveJobs());
  return D.Sampled.get();
}

void ExperimentContext::noteHalfWidth(double RelativeHalf) {
  if (!(RelativeHalf > 0.0))
    return;
  uint64_t Bits;
  std::memcpy(&Bits, &RelativeHalf, 8);
  uint64_t Cur = Stats.MaxHalfWidthBits.load(std::memory_order_relaxed);
  for (;;) {
    double CurVal;
    std::memcpy(&CurVal, &Cur, 8);
    if (RelativeHalf <= CurVal)
      return;
    if (Stats.MaxHalfWidthBits.compare_exchange_weak(
            Cur, Bits, std::memory_order_relaxed))
      return;
  }
}

double ExperimentContext::maxHalfWidth() const {
  uint64_t Bits = Stats.MaxHalfWidthBits.load(std::memory_order_relaxed);
  double V;
  std::memcpy(&V, &Bits, 8);
  return V;
}

const profile::ProfileSnapshot &
ExperimentContext::inip(const std::string &Name, uint64_t Threshold) {
  BenchData &D = data(Name);
  ensureProfiles(Name, D, Config.effectiveJobs());
  auto It = D.Inips.find(Threshold);
  assert(It != D.Inips.end() &&
         "threshold not part of the configured sweep");
  return It->second;
}

const profile::ProfileSnapshot &
ExperimentContext::avep(const std::string &Name) {
  BenchData &D = data(Name);
  ensureProfiles(Name, D, Config.effectiveJobs());
  return D.Avep;
}

const profile::ProfileSnapshot &
ExperimentContext::train(const std::string &Name) {
  BenchData &D = data(Name);
  ensureProfiles(Name, D, Config.effectiveJobs());
  return D.Train;
}

void ExperimentContext::warmUp(const std::vector<std::string> &Names,
                               unsigned Threads) {
  if (Threads == 0)
    Threads = Config.effectiveJobs();
  // With one worker per benchmark the per-threshold parallelism inside
  // replaySweep would only oversubscribe; hand it the workers instead
  // when the warm-up itself is serial.
  const unsigned ReplayJobs = Threads > 1 ? 1 : Config.effectiveJobs();
  parallelFor(Names.size(), Threads, [&](size_t I) {
    BenchData &D = data(Names[I]);
    ensureProfiles(Names[I], D, ReplayJobs);
  });
}

std::string ExperimentContext::statsSummary() const {
  const TraceCache::Counters &TC = Traces->stats();
  std::string Out = formatString(
      "jobs=%u prof %llu hit / %llu miss (%llu corrupt), trace %llu hit / "
      "%llu miss (%llu corrupt), %llu sweeps, %.1fs recording, "
      "%.1fs replaying, index %llu hit / %llu build (%.1fs), "
      "host %llu chained / %llu folded (%llu closed) / %llu fallback, "
      "jit %llu units / %llu blk / %llu iter / %llu deopt / %llu flush "
      "(%.2fs compile), "
      "sched %llu units / %llu reord / %llu dedup, "
      "stream %llu rec / %llu seg (%.1fs work, %.1fs flush), "
      "evict %llu (%.1f MB)",
      Config.effectiveJobs(),
      static_cast<unsigned long long>(
          Stats.CacheHits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          Stats.CacheMisses.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          Stats.CorruptEntries.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(TC.hits()),
      static_cast<unsigned long long>(
          TC.Misses.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.CorruptEntries.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          Stats.SweepsRun.load(std::memory_order_relaxed)),
      static_cast<double>(
          TC.RecordMicros.load(std::memory_order_relaxed)) /
          1e6,
      static_cast<double>(
          Stats.ReplayMicros.load(std::memory_order_relaxed)) /
          1e6,
      static_cast<unsigned long long>(
          TC.IndexHits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.IndexBuilds.load(std::memory_order_relaxed)),
      static_cast<double>(
          TC.IndexMicros.load(std::memory_order_relaxed)) /
          1e6,
      static_cast<unsigned long long>(
          TC.HostChainedBlocks.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.HostFoldedIters.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.HostClosedFormIters.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.HostFallbacks.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.JitUnits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.JitBlocks.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.JitLoopIters.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.JitDeopts.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.JitFlushes.load(std::memory_order_relaxed)),
      static_cast<double>(
          TC.JitCompileMicros.load(std::memory_order_relaxed)) /
          1e6,
      static_cast<unsigned long long>(
          TC.JitSchedUnits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.JitReorderedOps.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.JitStubsDeduped.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.StreamedRecords.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          TC.SegmentsPiped.load(std::memory_order_relaxed)),
      static_cast<double>(
          TC.PipelineMicros.load(std::memory_order_relaxed)) /
          1e6,
      static_cast<double>(
          TC.FlushMicros.load(std::memory_order_relaxed)) /
          1e6,
      static_cast<unsigned long long>(
          TC.Evictions.load(std::memory_order_relaxed)),
      static_cast<double>(
          TC.EvictedBytes.load(std::memory_order_relaxed)) /
          (1024.0 * 1024.0));
  // Appended only in sampled mode so exact-mode banners stay
  // byte-identical to builds without the feature.
  if (sampling()) {
    const uint64_t Dec =
        TC.SampleSegmentsDecoded.load(std::memory_order_relaxed);
    const uint64_t Skip =
        TC.SampleSegmentsSkipped.load(std::memory_order_relaxed);
    Out += formatString(
        ", sample %llu strata, %llu/%llu seg decoded (budget %.0f%%), "
        "max ci ±%.2f%%",
        static_cast<unsigned long long>(
            Stats.SampleStrata.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(Dec),
        static_cast<unsigned long long>(Dec + Skip),
        Config.Sample.BudgetFrac * 100.0, maxHalfWidth() * 100.0);
  }
  return Out;
}
