//===- core/Experiment.cpp - Cached experiment context ---------------------===//

#include "core/Experiment.h"

#include "support/Format.h"
#include "support/Rng.h"
#include "support/TextFile.h"
#include "support/ThreadPool.h"
#include "workloads/BenchSpec.h"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>

using namespace tpdbt;
using namespace tpdbt::core;
using namespace tpdbt::workloads;

const std::vector<uint64_t> &tpdbt::core::paperThresholds() {
  static const std::vector<uint64_t> T = {100,   200,   500,    1000,
                                          2000,  5000,  10000,  20000,
                                          40000, 80000, 160000, 1000000,
                                          4000000};
  return T;
}

const std::vector<uint64_t> &tpdbt::core::performanceThresholds() {
  static const std::vector<uint64_t> T = [] {
    std::vector<uint64_t> All = {1, 50};
    for (uint64_t V : paperThresholds())
      All.push_back(V);
    return All;
  }();
  return T;
}

ExperimentConfig::ExperimentConfig() : Thresholds(performanceThresholds()) {}

ExperimentConfig ExperimentConfig::fromEnv() {
  ExperimentConfig C;
  if (const char *S = std::getenv("TPDBT_SCALE")) {
    double V = std::atof(S);
    if (V > 0.0)
      C.Scale = V;
  }
  if (const char *Dir = std::getenv("TPDBT_CACHE_DIR")) {
    if (std::strcmp(Dir, "off") == 0)
      C.CacheDir.clear();
    else
      C.CacheDir = Dir;
  }
  if (const char *Jobs = std::getenv("TPDBT_JOBS")) {
    int V = std::atoi(Jobs);
    if (V > 0)
      C.Jobs = static_cast<unsigned>(V);
  }
  return C;
}

unsigned ExperimentConfig::effectiveJobs() const {
  return Jobs ? Jobs : ThreadPool::defaultThreads();
}

uint64_t ExperimentConfig::fingerprint() const {
  // Jobs is deliberately excluded: the job count never changes results,
  // so caches stay valid across TPDBT_JOBS settings.
  uint64_t H = 0x7bd7u; // format version salt; bump on layout changes
  uint64_t ScaleBits;
  static_assert(sizeof(double) == sizeof(uint64_t));
  std::memcpy(&ScaleBits, &Scale, 8);
  H = combineSeeds(H, ScaleBits);
  for (uint64_t T : Thresholds)
    H = combineSeeds(H, T);
  H = combineSeeds(H, Dbt.PoolLimit);
  uint64_t MinProbBits;
  std::memcpy(&MinProbBits, &Dbt.Formation.MinBranchProb, 8);
  H = combineSeeds(H, MinProbBits);
  H = combineSeeds(H, Dbt.Formation.MaxRegionBlocks);
  H = combineSeeds(H, Dbt.Formation.EnableDiamonds ? 1 : 0);
  H = combineSeeds(H, Dbt.Formation.AllowDuplication ? 1 : 0);
  H = combineSeeds(H, Dbt.Cost.ColdPerInst);
  H = combineSeeds(H, Dbt.Cost.ProfilePerBlock);
  H = combineSeeds(H, Dbt.Cost.OptPerInst);
  H = combineSeeds(H, Dbt.Cost.OptOffTracePerInst);
  H = combineSeeds(H, Dbt.Cost.SideExitPenalty);
  H = combineSeeds(H, Dbt.Cost.LoopExitPenalty);
  H = combineSeeds(H, Dbt.Cost.OptimizePerInst);
  return H;
}

ExperimentContext::ExperimentContext(ExperimentConfig Config)
    : Config(std::move(Config)) {}

ExperimentContext::BenchData &
ExperimentContext::data(const std::string &Name) {
  BenchData *D;
  {
    std::lock_guard<std::mutex> Guard(DataLock);
    D = &Data[Name];
  }
  std::lock_guard<std::mutex> Guard(D->Lock);
  if (!D->Bench) {
    const BenchSpec *Spec = findSpec(Name);
    assert(Spec && "unknown benchmark name");
    BenchSpec Scaled =
        Config.Scale == 1.0 ? *Spec : scaledSpec(*Spec, Config.Scale);
    D->Bench = std::make_unique<GeneratedBenchmark>(generateBenchmark(Scaled));
    D->Graph = std::make_unique<cfg::Cfg>(D->Bench->Ref);
  }
  return *D;
}

const GeneratedBenchmark &
ExperimentContext::benchmark(const std::string &Name) {
  return *data(Name).Bench;
}

const cfg::Cfg &ExperimentContext::graph(const std::string &Name) {
  return *data(Name).Graph;
}

/// Hash of the spec fields that affect generated behaviour, so editing a
/// benchmark's calibration invalidates its cache entries.
static uint64_t specFingerprint(const BenchSpec &S) {
  uint64_t H = combineSeeds(S.Seed, S.OuterItersRef);
  H = combineSeeds(H, S.OuterItersTrain);
  H = combineSeeds(H, S.Break1);
  H = combineSeeds(H, S.Break2);
  H = combineSeeds(H, S.LoopBreak1);
  H = combineSeeds(H, S.LoopBreak2);
  auto MixDouble = [&H](double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    H = combineSeeds(H, Bits);
  };
  for (double C : S.ThetaPhaseCoef)
    MixDouble(C);
  MixDouble(S.ThetaDriftMag);
  for (double C : S.TripPhaseExp)
    MixDouble(C);
  MixDouble(S.TripPhaseFactor);
  MixDouble(S.SmoothDriftMag);
  MixDouble(S.NearBoundaryFrac);
  MixDouble(S.MidFrac);
  MixDouble(S.TrainThetaSigma);
  MixDouble(S.TrainTripSigma);
  H = combineSeeds(H, static_cast<uint64_t>(S.NumChainKernels));
  H = combineSeeds(H, static_cast<uint64_t>(S.NumDiamondKernels));
  H = combineSeeds(H, static_cast<uint64_t>(S.NumBranchKernels));
  H = combineSeeds(H, static_cast<uint64_t>(S.NumLoopKernels));
  H = combineSeeds(H, static_cast<uint64_t>(S.NumNestKernels));
  H = combineSeeds(H, static_cast<uint64_t>(S.LoopTripLo));
  H = combineSeeds(H, static_cast<uint64_t>(S.LoopTripHi));
  H = combineSeeds(H, static_cast<uint64_t>(S.NestOuterLo));
  H = combineSeeds(H, static_cast<uint64_t>(S.NestOuterHi));
  H = combineSeeds(H, static_cast<uint64_t>(S.NestInnerLo));
  H = combineSeeds(H, static_cast<uint64_t>(S.NestInnerHi));
  H = combineSeeds(H, S.LoopLocalPhases ? 1 : 0);
  H = combineSeeds(H, static_cast<uint64_t>(S.TripFlipLowBaseLo));
  H = combineSeeds(H, static_cast<uint64_t>(S.TripFlipLowBaseHi));
  MixDouble(S.TripPhaseFrac);
  return H;
}

std::string ExperimentContext::cachePath(const std::string &Name,
                                         uint64_t SpecFp,
                                         const std::string &Input,
                                         uint64_t Threshold) const {
  uint64_t Fp = combineSeeds(Config.fingerprint(), SpecFp);
  return formatString("%s/%s.%s.T%llu.%016llx.prof", Config.CacheDir.c_str(),
                      Name.c_str(), Input.c_str(),
                      static_cast<unsigned long long>(Threshold),
                      static_cast<unsigned long long>(Fp));
}

bool ExperimentContext::loadCached(const std::string &Name, BenchData &D) {
  if (Config.CacheDir.empty())
    return false;
  uint64_t SpecFp = specFingerprint(D.Bench->Spec);
  auto LoadOne = [&](const std::string &Input, uint64_t T,
                     profile::ProfileSnapshot &Out) {
    auto Text = readTextFile(cachePath(Name, SpecFp, Input, T));
    if (!Text)
      return false;
    if (!profile::parseSnapshot(*Text, Out, nullptr)) {
      // Torn or corrupt entry: count it and recompute instead of failing.
      Stats.CorruptEntries.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  };
  auto LoadAll = [&] {
    for (uint64_t T : Config.Thresholds) {
      profile::ProfileSnapshot S;
      if (!LoadOne("ref", T, S))
        return false;
      D.Inips[T] = std::move(S);
    }
    if (!LoadOne("ref", 0, D.Avep))
      return false;
    if (!LoadOne("train", 0, D.Train))
      return false;
    return true;
  };
  if (LoadAll())
    return true;
  // Leave no partially-loaded state behind for the recomputation path.
  D.Inips.clear();
  D.Avep = profile::ProfileSnapshot();
  D.Train = profile::ProfileSnapshot();
  return false;
}

void ExperimentContext::storeCached(const std::string &Name,
                                    const BenchData &D) const {
  if (Config.CacheDir.empty())
    return;
  if (!ensureDirectory(Config.CacheDir))
    return;
  uint64_t SpecFp = specFingerprint(D.Bench->Spec);
  for (const auto &[T, S] : D.Inips)
    writeTextFileAtomic(cachePath(Name, SpecFp, "ref", T),
                        profile::printSnapshot(S));
  writeTextFileAtomic(cachePath(Name, SpecFp, "ref", 0),
                      profile::printSnapshot(D.Avep));
  writeTextFileAtomic(cachePath(Name, SpecFp, "train", 0),
                      profile::printSnapshot(D.Train));
}

void ExperimentContext::ensureProfiles(const std::string &Name,
                                       BenchData &D) {
  if (D.ProfilesReady.load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> Guard(D.Lock);
  if (D.ProfilesReady.load(std::memory_order_relaxed))
    return; // another worker finished while we waited on the lock
  if (loadCached(Name, D)) {
    Stats.CacheHits.fetch_add(1, std::memory_order_relaxed);
    D.ProfilesReady.store(true, std::memory_order_release);
    return;
  }
  Stats.CacheMisses.fetch_add(1, std::memory_order_relaxed);

  const GeneratedBenchmark &B = *D.Bench;
  uint64_t MaxBlocks = B.Spec.MaxBlockEvents;
  auto Start = std::chrono::steady_clock::now();

  SweepResult RefSweep =
      runSweep(B.Ref, Config.Thresholds, Config.Dbt, MaxBlocks);
  for (size_t I = 0; I < Config.Thresholds.size(); ++I) {
    profile::ProfileSnapshot &S = RefSweep.PerThreshold[I];
    S.Benchmark = Name;
    S.Input = "ref";
    D.Inips[Config.Thresholds[I]] = std::move(S);
  }
  RefSweep.Average.Benchmark = Name;
  RefSweep.Average.Input = "ref";
  D.Avep = std::move(RefSweep.Average);

  SweepResult TrainSweep = runSweep(B.Train, {}, Config.Dbt, MaxBlocks);
  TrainSweep.Average.Benchmark = Name;
  TrainSweep.Average.Input = "train";
  D.Train = std::move(TrainSweep.Average);

  auto End = std::chrono::steady_clock::now();
  Stats.SweepsRun.fetch_add(2, std::memory_order_relaxed);
  Stats.SweepMicros.fetch_add(
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count(),
      std::memory_order_relaxed);

  storeCached(Name, D);
  D.ProfilesReady.store(true, std::memory_order_release);
}

const profile::ProfileSnapshot &
ExperimentContext::inip(const std::string &Name, uint64_t Threshold) {
  BenchData &D = data(Name);
  ensureProfiles(Name, D);
  auto It = D.Inips.find(Threshold);
  assert(It != D.Inips.end() &&
         "threshold not part of the configured sweep");
  return It->second;
}

const profile::ProfileSnapshot &
ExperimentContext::avep(const std::string &Name) {
  BenchData &D = data(Name);
  ensureProfiles(Name, D);
  return D.Avep;
}

const profile::ProfileSnapshot &
ExperimentContext::train(const std::string &Name) {
  BenchData &D = data(Name);
  ensureProfiles(Name, D);
  return D.Train;
}

void ExperimentContext::warmUp(const std::vector<std::string> &Names,
                               unsigned Threads) {
  if (Threads == 0)
    Threads = Config.effectiveJobs();
  parallelFor(Names.size(), Threads, [&](size_t I) {
    BenchData &D = data(Names[I]);
    ensureProfiles(Names[I], D);
  });
}

std::string ExperimentContext::statsSummary() const {
  return formatString(
      "jobs=%u cache %llu hit / %llu miss (%llu corrupt), %llu sweeps, "
      "%.1fs interpreting",
      Config.effectiveJobs(),
      static_cast<unsigned long long>(
          Stats.CacheHits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          Stats.CacheMisses.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          Stats.CorruptEntries.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          Stats.SweepsRun.load(std::memory_order_relaxed)),
      static_cast<double>(Stats.SweepMicros.load(std::memory_order_relaxed)) /
          1e6);
}
