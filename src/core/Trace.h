//===- core/Trace.h - Block-event trace record / replay ---------*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records one execution's block-event stream to a compact binary buffer
/// and replays it through translation policies without re-interpreting.
///
/// This is the standard decoupling in DBT/profiling research: collect the
/// trace once (expensive), then study arbitrarily many translator
/// configurations against it (cheap). replaySweep() is the trace-driven
/// twin of core::runSweep and produces byte-identical snapshots — a
/// property test asserts that.
///
/// Format (TPDT v2): little-endian; a small header (magic, version, block
/// count, event count), the final per-block use/taken counters (two
/// varints per block — they arm policy retirement and the analytic index
/// without an O(events) pre-pass), then two varints per event: the block
/// id delta-encoded against the previous event's id (zigzag) with the
/// branch outcome folded into the low bits, and the executed instruction
/// count. Typical traces take 2-3 bytes per event. Version 1 entries
/// (no counter table) remain readable.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_CORE_TRACE_H
#define TPDBT_CORE_TRACE_H

#include "core/Runner.h"
#include "guest/Program.h"
#include "profile/Profile.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tpdbt {
namespace vm {
struct HostTierStats;
} // namespace vm
namespace core {

class TraceIndex;

/// One recorded block event.
struct TraceEvent {
  guest::BlockId Block = 0;
  /// 0 = no conditional branch, 1 = branch not taken, 2 = branch taken.
  uint8_t Branch = 0;
  uint32_t Insts = 0;
};

/// A recorded execution.
class BlockTrace {
public:
  BlockTrace() = default;
  BlockTrace(const BlockTrace &Other);
  BlockTrace(BlockTrace &&Other) noexcept;
  BlockTrace &operator=(const BlockTrace &Other);
  BlockTrace &operator=(BlockTrace &&Other) noexcept;

  /// Segment-boundary callback for record(): invoked with the trace so
  /// far whenever the event count reaches the current boundary; returns
  /// the next boundary to watch for (core/TracePipeline.h hands finished
  /// segments to its compressor/indexer stage from here). The callback
  /// must not retain references into the trace across calls — the event
  /// vector may reallocate as recording continues.
  using SegmentProgressFn = std::function<uint64_t(const BlockTrace &)>;

  /// Records a full execution of \p P (up to \p MaxBlocks events).
  /// Interpretation runs under the host translation tier (vm/HostTier.h)
  /// unless TPDBT_HOST_TRANS=0; either way the recorded bytes are
  /// identical — self-loop runs land through appendRun() instead of
  /// per-event append(). \p TierStats, when non-null, accumulates the
  /// tier's coverage counters. When \p SegmentBudget is nonzero,
  /// \p OnSegment fires at each boundary crossing (one integer compare
  /// per sink delivery otherwise) — boundary checks run after batched
  /// deliveries, so a crossing can overshoot by one run/chain batch.
  static BlockTrace record(const guest::Program &P, uint64_t MaxBlocks = ~0ull,
                           vm::HostTierStats *TierStats = nullptr,
                           const SegmentProgressFn &OnSegment = nullptr,
                           uint64_t SegmentBudget = 0);

  /// Serializes to the binary format; parse() round-trips. parse() also
  /// accepts version-1 entries (recorded before the counter table).
  std::string serialize() const;

  /// Serializes to the segmented TPDT v3 container (core/TraceSegments.h)
  /// with \p Budget events per segment (>= 1; the last segment takes the
  /// remainder). parse() reads v3 back; the result is event-identical to
  /// this trace at any budget.
  std::string serializeSegmented(uint64_t Budget) const;
  static bool parse(const std::string &Bytes, BlockTrace &Out,
                    std::string *Error);

  size_t numEvents() const { return Events.size(); }
  size_t numBlocks() const { return NumBlocks; }
  const TraceEvent &event(size_t I) const { return Events[I]; }
  uint64_t totalInsts() const { return TotalInsts; }
  /// Number of events that are taken conditional branches (supports the
  /// closed-form policy fast-forward in replaySweep).
  uint64_t takenEvents() const { return TakenEvents; }

  /// Final per-block use/taken counters, maintained incrementally by
  /// append(). These are the end-of-run shared counters every replay needs
  /// up front (oracle arming, snapshot finals, index row sizes).
  const std::vector<profile::BlockCounters> &finalCounts() const {
    return Final;
  }

  /// The analytic replay index over this trace, built on first use and
  /// cached for the trace's lifetime. Thread-safe.
  const TraceIndex &index() const;

  /// Installs a precomputed index (e.g. loaded from a TraceCache sidecar).
  /// Rejected unless it matches this trace; returns whether it was
  /// adopted (an already-built index also counts as adopted).
  bool adoptIndex(std::shared_ptr<const TraceIndex> Idx) const;

  /// The cached index, or null if none has been built or adopted yet.
  std::shared_ptr<const TraceIndex> sharedIndex() const;

  /// Appends one event (used by record() and tests).
  void append(const TraceEvent &E) {
    Events.push_back(E);
    TotalInsts += E.Insts;
    if (Final.size() <= E.Block)
      Final.resize(E.Block + 1);
    ++Final[E.Block].Use;
    if (E.Branch == 2) {
      ++TakenEvents;
      ++Final[E.Block].Taken;
    }
  }
  /// Appends \p N copies of one event — the run-length entry point for
  /// the host tier's batched self-loop iterations. Equivalent to calling
  /// append(E) N times (serialize() output included), without the
  /// per-event counter maintenance.
  void appendRun(const TraceEvent &E, uint64_t N) {
    if (N == 0)
      return;
    // Explicit doubling + push_back loop: vector's fill-insert path
    // (insert(end, N, E) / resize(n, E)) measures ~2x slower here than
    // the inlined push_back fast path it bypasses.
    const size_t Need = Events.size() + N;
    if (Need > Events.capacity())
      Events.reserve(std::max(Need, Events.capacity() * 2));
    for (uint64_t I = 0; I < N; ++I)
      Events.push_back(E);
    TotalInsts += static_cast<uint64_t>(E.Insts) * N;
    if (Final.size() <= E.Block)
      Final.resize(E.Block + 1);
    Final[E.Block].Use += N;
    if (E.Branch == 2) {
      TakenEvents += N;
      Final[E.Block].Taken += N;
    }
  }
  /// Pre-sizes the event storage. record() and parse() use this to avoid
  /// the vector growth chain, which on multi-megabyte traces costs more
  /// than the event stores themselves (every doubling is a fresh
  /// allocation, a copy, and a page-fault pass over the new region;
  /// reserved-but-untouched pages are never faulted, so overshooting is
  /// nearly free).
  void reserveEvents(size_t N) { Events.reserve(N); }
  void setNumBlocks(size_t N) {
    NumBlocks = N;
    if (Final.size() < N)
      Final.resize(N);
  }

private:
  std::vector<TraceEvent> Events;
  std::vector<profile::BlockCounters> Final;
  size_t NumBlocks = 0;
  uint64_t TotalInsts = 0;
  uint64_t TakenEvents = 0;
  /// Lazily-built index (see index()). Mutable: the index is a cache of a
  /// pure function of the trace, not logical state.
  mutable std::mutex IndexLock;
  mutable std::shared_ptr<const TraceIndex> Index;
};

/// Trace-driven twin of runSweep(): derives the snapshot for one policy
/// per threshold (plus the profiling-only policy), byte-identical to a
/// live sweep of the same execution.
///
/// Non-adaptive policies are evaluated *analytically* from the trace's
/// TraceIndex: the freeze timeline is reconstructed from per-block
/// occurrence positions (registration at the T-th occurrence, the
/// registered-twice trigger at the 2T-th), frozen counters come from
/// prefix-sum differences, region formation and cost accounting run
/// exactly as in the pump on those counters, and only the optimized
/// sub-stream (events of frozen blocks after their freeze) is walked —
/// with single-node loop regions folded into closed form. Duplicate
/// thresholds share one evaluation, and the per-threshold units are
/// dispatched on up to \p Jobs worker threads (results are identical at
/// any job count).
///
/// Adaptive policies (frozen blocks can thaw, so no static freeze
/// timeline exists) fall back to replaySweepEvents().
SweepResult replaySweep(const BlockTrace &Trace, const guest::Program &P,
                        const std::vector<uint64_t> &Thresholds,
                        const dbt::DbtOptions &Base, unsigned Jobs = 1);

/// The event-pump replay: feeds every trace event through every policy,
/// with oracle-based retirement of settled policies (see
/// TranslationPolicy::beginOracle). Kept as the adaptive-mode path and as
/// the differential-testing oracle for the analytic path above.
SweepResult replaySweepEvents(const BlockTrace &Trace,
                              const guest::Program &P,
                              const std::vector<uint64_t> &Thresholds,
                              const dbt::DbtOptions &Base);

/// The chunked core of the event pump: identical policy semantics to
/// replaySweepEvents (which is now a one-chunk wrapper), but the event
/// stream arrives through \p NextChunk — set the pointer to the next
/// contiguous slice and return its length, or return 0 at end of stream.
/// Chunks are consumed strictly in order and the callee never looks past
/// the current chunk, so a caller can hand out one segment-sized buffer
/// at a time (core/TraceSegments.h replaySweepStreamed). The stream
/// totals and final counters must describe the whole stream up front —
/// they arm the retirement oracle and the settled fast-forward.
SweepResult
pumpSweepChunks(const guest::Program &P,
                const std::vector<uint64_t> &Thresholds,
                const dbt::DbtOptions &Base, uint64_t NumEvents,
                uint64_t TotalInsts, uint64_t TakenTotal,
                const std::vector<profile::BlockCounters> &Final,
                const std::function<size_t(const TraceEvent *&)> &NextChunk);

} // namespace core
} // namespace tpdbt

#endif // TPDBT_CORE_TRACE_H
