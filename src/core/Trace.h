//===- core/Trace.h - Block-event trace record / replay ---------*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records one execution's block-event stream to a compact binary buffer
/// and replays it through translation policies without re-interpreting.
///
/// This is the standard decoupling in DBT/profiling research: collect the
/// trace once (expensive), then study arbitrarily many translator
/// configurations against it (cheap). replaySweep() is the trace-driven
/// twin of core::runSweep and produces byte-identical snapshots — a
/// property test asserts that.
///
/// Format: little-endian; a small header (magic, version, block count),
/// then two varints per event: the block id delta-encoded against the
/// previous event's id (zigzag) with the branch outcome folded into the
/// low bits, and the executed instruction count. Typical traces take 2-3
/// bytes per event.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_CORE_TRACE_H
#define TPDBT_CORE_TRACE_H

#include "core/Runner.h"
#include "guest/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tpdbt {
namespace core {

/// One recorded block event.
struct TraceEvent {
  guest::BlockId Block = 0;
  /// 0 = no conditional branch, 1 = branch not taken, 2 = branch taken.
  uint8_t Branch = 0;
  uint32_t Insts = 0;
};

/// A recorded execution.
class BlockTrace {
public:
  /// Records a full execution of \p P (up to \p MaxBlocks events).
  static BlockTrace record(const guest::Program &P,
                           uint64_t MaxBlocks = ~0ull);

  /// Serializes to the binary format; parse() round-trips.
  std::string serialize() const;
  static bool parse(const std::string &Bytes, BlockTrace &Out,
                    std::string *Error);

  size_t numEvents() const { return Events.size(); }
  size_t numBlocks() const { return NumBlocks; }
  const TraceEvent &event(size_t I) const { return Events[I]; }
  uint64_t totalInsts() const { return TotalInsts; }
  /// Number of events that are taken conditional branches (supports the
  /// closed-form policy fast-forward in replaySweep).
  uint64_t takenEvents() const { return TakenEvents; }

  /// Appends one event (used by record() and tests).
  void append(const TraceEvent &E) {
    Events.push_back(E);
    TotalInsts += E.Insts;
    if (E.Branch == 2)
      ++TakenEvents;
  }
  void setNumBlocks(size_t N) { NumBlocks = N; }

private:
  std::vector<TraceEvent> Events;
  size_t NumBlocks = 0;
  uint64_t TotalInsts = 0;
  uint64_t TakenEvents = 0;
};

/// Trace-driven twin of runSweep(): replays \p Trace through one policy
/// per threshold (plus the profiling-only policy) and returns snapshots
/// byte-identical to a live sweep of the same execution.
///
/// Because the trace's final per-block counts are known before replay
/// starts, each policy is *retired* from the per-event dispatch set the
/// moment no future event can change its translation state (see
/// TranslationPolicy::beginOracle): its remaining stream is burst-replayed
/// through the cheap settled path — or folded into one closed-form update
/// when the policy froze nothing, which makes the profiling-only policy
/// nearly free. Once every policy has retired the event loop exits early.
SweepResult replaySweep(const BlockTrace &Trace, const guest::Program &P,
                        const std::vector<uint64_t> &Thresholds,
                        const dbt::DbtOptions &Base);

} // namespace core
} // namespace tpdbt

#endif // TPDBT_CORE_TRACE_H
