//===- core/WindowedProfile.h - Per-window profile collection ---*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects use/taken counters per execution window: the raw signal for
/// phase analysis (examples/phase_explorer) and for the mispredicted-
/// branch characterization (analysis/Mispredict.h).
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_CORE_WINDOWEDPROFILE_H
#define TPDBT_CORE_WINDOWEDPROFILE_H

#include "guest/Program.h"
#include "profile/Profile.h"

#include <vector>

namespace tpdbt {
namespace core {

/// Per-window block counters of one full execution.
struct WindowedProfile {
  /// Windows[w][b] = counters of block b during window w. Windows split
  /// the execution into equal numbers of block events.
  std::vector<std::vector<profile::BlockCounters>> Windows;
  uint64_t TotalBlockEvents = 0;

  size_t numWindows() const { return Windows.size(); }

  /// Taken probability of \p B during window \p W (0 when unused).
  double takenProb(size_t W, guest::BlockId B) const {
    return Windows[W][B].takenProb();
  }
};

/// Executes \p P to completion (or \p MaxBlocks) twice — once to size the
/// windows, once to fill them — and returns the windowed counters.
WindowedProfile collectWindowedProfile(const guest::Program &P,
                                       size_t NumWindows,
                                       uint64_t MaxBlocks = ~0ull);

} // namespace core
} // namespace tpdbt

#endif // TPDBT_CORE_WINDOWEDPROFILE_H
