//===- core/WindowedProfile.h - Per-window profile collection ---*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects use/taken counters per execution window: the raw signal for
/// phase analysis (examples/phase_explorer) and for the mispredicted-
/// branch characterization (analysis/Mispredict.h).
///
/// Windows split the execution into equal numbers of block events, so
/// sizing them needs the total event count up front. When a recorded
/// trace is available its event vector provides both the count and the
/// stream, and the windows are filled without executing anything; the
/// execute-twice path (one sizing run, one filling run) remains only for
/// trace-off callers.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_CORE_WINDOWEDPROFILE_H
#define TPDBT_CORE_WINDOWEDPROFILE_H

#include "core/Trace.h"
#include "guest/Program.h"
#include "profile/Profile.h"

#include <vector>

namespace tpdbt {
namespace core {

/// Per-window block counters of one full execution.
struct WindowedProfile {
  /// Windows[w][b] = counters of block b during window w. Windows split
  /// the execution into equal numbers of block events.
  std::vector<std::vector<profile::BlockCounters>> Windows;
  uint64_t TotalBlockEvents = 0;

  size_t numWindows() const { return Windows.size(); }

  /// Taken probability of \p B during window \p W (0 when unused).
  double takenProb(size_t W, guest::BlockId B) const {
    return Windows[W][B].takenProb();
  }
};

/// Executes \p P to completion (or \p MaxBlocks) twice — once to size the
/// windows, once to fill them — and returns the windowed counters. Prefer
/// the trace overload when a recording exists; this one stays for callers
/// without one.
WindowedProfile collectWindowedProfile(const guest::Program &P,
                                       size_t NumWindows,
                                       uint64_t MaxBlocks = ~0ull);

/// Slices \p Trace (a recording of the same program) into \p NumWindows
/// windows without executing anything: the trace's event count sizes the
/// windows and its event stream fills them. Byte-identical to the
/// execute-twice overload for a trace of the same execution.
WindowedProfile collectWindowedProfile(const guest::Program &P,
                                       size_t NumWindows,
                                       const BlockTrace &Trace);

} // namespace core
} // namespace tpdbt

#endif // TPDBT_CORE_WINDOWEDPROFILE_H
