//===- core/TracePipeline.h - Streamed record/compress/index ----*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overlaps trace recording with segment compression and indexing. The
/// recorder (producer) crosses a segment boundary, copies the finished
/// slice out of the live event vector, and hands it through a lock-free
/// SPSC ring (support/SpscRing.h) to a single consumer worker that
/// delta-varint encodes, TPDZ-compresses, and CSR-indexes the segment
/// while the recorder interprets the next one:
///
///   record ──▶ SpscRing ──▶ encode + compress + buildPart
///
/// finish() closes the ring, drains the consumer, assembles the TPDT v3
/// container from the finished segments, and stitches the per-segment
/// index parts into the full TraceIndex — so a cold cache miss leaves
/// the record path having paid (ideally) only the recording wall clock,
/// with compression and index construction hidden behind it.
///
/// The consumer computes each segment's global prefix-sum bases from its
/// own running totals, not from the live trace's counters: by the time a
/// boundary callback runs, the recorder's batched deliveries may already
/// have pushed the live totals past the boundary.
///
/// One producer, one consumer; a TracePipeline instance serves exactly
/// one recording. TraceCache::get() wires it to BlockTrace::record()'s
/// segment callback when TPDBT_SEGMENT_EVENTS is nonzero.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_CORE_TRACEPIPELINE_H
#define TPDBT_CORE_TRACEPIPELINE_H

#include "core/Trace.h"
#include "core/TraceIndex.h"
#include "core/TraceSegments.h"
#include "support/SpscRing.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tpdbt {
namespace core {

class TracePipeline {
public:
  struct Result {
    /// The assembled TPDT v3 container (empty when the pipeline was
    /// created with WantFile = false).
    std::string FileBytes;
    /// The full analytic index, stitched from the per-segment parts;
    /// carries the TPDX v2 segment directory.
    std::shared_ptr<const TraceIndex> Index;
    uint64_t Segments = 0;
    /// Consumer wall clock spent on segments (encode + compress +
    /// buildPart) — work overlapped with recording.
    uint64_t WorkMicros = 0;
    /// finish() wall clock: tail handoff, consumer drain, container
    /// assembly, and index stitch — the part that is NOT overlapped.
    uint64_t FlushMicros = 0;
  };

  /// \p Budget is the per-segment event count (>= 1); \p WantFile
  /// enables payload compression and container assembly (false when no
  /// disk layer wants the bytes — the index parts are still built).
  TracePipeline(uint64_t Budget, size_t NumBlocks, bool WantFile);

  /// Closes the ring and joins the consumer if finish() never ran.
  ~TracePipeline();

  TracePipeline(const TracePipeline &) = delete;
  TracePipeline &operator=(const TracePipeline &) = delete;

  /// BlockTrace::record() segment callback: pushes every completed
  /// budget-sized slice to the consumer and returns the next boundary.
  /// Blocks (ring backpressure) when the consumer is more than a few
  /// segments behind, bounding in-flight memory.
  uint64_t onProgress(const BlockTrace &T);

  /// Hands off the partial tail segment, drains the consumer, and
  /// assembles the container and stitched index. Call exactly once,
  /// after recording completes.
  Result finish(const BlockTrace &T);

private:
  struct Work {
    std::vector<TraceEvent> Events;
  };

  void consumeLoop();

  const uint64_t Budget;
  const size_t NumBlocks;
  const bool WantFile;

  /// Producer side: events already handed to the consumer.
  uint64_t DoneThrough = 0;
  bool Finished = false;

  /// A few segments of slack decouples recording jitter from compression
  /// jitter; beyond that, backpressure caps in-flight memory.
  SpscRing<Work> Ring{8};

  /// Consumer-owned accumulation (read by finish() only after the drain).
  std::vector<TraceSegmentRecord> Segments;
  std::vector<TraceIndex::SegmentPart> Parts;
  uint64_t RunPos = 0, RunInsts = 0, RunTaken = 0;
  uint64_t WorkMicros = 0;

  /// Declared last so the worker never outlives the state above.
  ThreadPool Pool{1};
};

} // namespace core
} // namespace tpdbt

#endif // TPDBT_CORE_TRACEPIPELINE_H
