//===- core/WindowedProfile.cpp - Per-window profile collection ------------===//

#include "core/WindowedProfile.h"

#include "vm/Interpreter.h"

#include <algorithm>
#include <cassert>

using namespace tpdbt;
using namespace tpdbt::core;

namespace {

WindowedProfile sizedWindows(size_t NumWindows, size_t NumBlocks,
                             uint64_t Total) {
  WindowedProfile Out;
  Out.TotalBlockEvents = Total;
  Out.Windows.assign(NumWindows,
                     std::vector<profile::BlockCounters>(NumBlocks));
  return Out;
}

} // namespace

WindowedProfile tpdbt::core::collectWindowedProfile(const guest::Program &P,
                                                    size_t NumWindows,
                                                    uint64_t MaxBlocks) {
  assert(NumWindows > 0 && "need at least one window");
  vm::Interpreter Interp(P);

  // First pass: total length (execution is deterministic).
  vm::Machine M;
  M.reset(P);
  uint64_t Total = Interp.run(M, MaxBlocks).BlocksExecuted;

  WindowedProfile Out = sizedWindows(NumWindows, P.numBlocks(), Total);
  uint64_t WindowLen = Total / NumWindows + 1;

  M.reset(P);
  uint64_t Event = 0;
  Interp.run(M, MaxBlocks,
             [&](guest::BlockId B, const vm::BlockResult &R) {
               size_t W = std::min<size_t>(Event / WindowLen,
                                           NumWindows - 1);
               ++Out.Windows[W][B].Use;
               if (R.IsCondBranch && R.Taken)
                 ++Out.Windows[W][B].Taken;
               ++Event;
             });
  return Out;
}

WindowedProfile tpdbt::core::collectWindowedProfile(const guest::Program &P,
                                                    size_t NumWindows,
                                                    const BlockTrace &Trace) {
  assert(NumWindows > 0 && "need at least one window");
  const uint64_t Total = Trace.numEvents();
  WindowedProfile Out = sizedWindows(NumWindows, P.numBlocks(), Total);
  // Same sizing rule as the execute-twice path, so both produce identical
  // windows for the same execution.
  const uint64_t WindowLen = Total / NumWindows + 1;
  for (uint64_t Event = 0; Event < Total; ++Event) {
    const TraceEvent &E = Trace.event(Event);
    size_t W = std::min<size_t>(Event / WindowLen, NumWindows - 1);
    assert(E.Block < Out.Windows[W].size() && "trace/program mismatch");
    ++Out.Windows[W][E.Block].Use;
    if (E.Branch == 2)
      ++Out.Windows[W][E.Block].Taken;
  }
  return Out;
}
