//===- core/TracePipeline.cpp - Streamed record/compress/index -------------===//

#include "core/TracePipeline.h"

#include "support/Compression.h"

#include <cassert>
#include <chrono>

using namespace tpdbt;
using namespace tpdbt::core;

namespace {

uint64_t microsSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

} // namespace

TracePipeline::TracePipeline(uint64_t Budget, size_t NumBlocks, bool WantFile)
    : Budget(Budget), NumBlocks(NumBlocks), WantFile(WantFile) {
  assert(Budget >= 1 && "segment budget must be positive");
  Pool.submit([this] { consumeLoop(); });
}

TracePipeline::~TracePipeline() {
  if (!Finished) {
    // Abandoned without finish() (error unwind): release the consumer so
    // the pool can join it.
    Ring.close();
    Pool.wait();
  }
}

void TracePipeline::consumeLoop() {
  Work W;
  while (Ring.pop(W)) {
    const auto Start = std::chrono::steady_clock::now();
    TraceSegmentRecord Rec;
    Rec.Events = static_cast<uint32_t>(W.Events.size());
    Rec.BaseInsts = RunInsts;
    Rec.BaseTaken = RunTaken;
    if (WantFile)
      Rec.Payload = compressBytes(
          encodeSegmentEvents(W.Events.data(), W.Events.size()));
    Parts.push_back(TraceIndex::buildPart(W.Events.data(), W.Events.size(),
                                          NumBlocks, RunPos));
    for (const TraceEvent &E : W.Events) {
      RunInsts += E.Insts;
      if (E.Branch == 2)
        ++RunTaken;
    }
    RunPos += W.Events.size();
    Segments.push_back(std::move(Rec));
    WorkMicros += microsSince(Start);
  }
}

uint64_t TracePipeline::onProgress(const BlockTrace &T) {
  // Batched recorder deliveries can overshoot a boundary by a whole
  // run/chain batch, even past several boundaries at once — cut strictly
  // budget-sized segments regardless.
  while (T.numEvents() >= DoneThrough + Budget) {
    const TraceEvent *Slice = &T.event(static_cast<size_t>(DoneThrough));
    Work W;
    // Copy the slice out of the live vector: recording continues while
    // the consumer reads, and the vector may reallocate under growth.
    W.Events.assign(Slice, Slice + Budget);
    Ring.push(std::move(W));
    DoneThrough += Budget;
  }
  return DoneThrough + Budget;
}

TracePipeline::Result TracePipeline::finish(const BlockTrace &T) {
  assert(!Finished && "finish() must run exactly once");
  const auto Start = std::chrono::steady_clock::now();
  if (T.numEvents() > DoneThrough) {
    const TraceEvent *Slice = &T.event(static_cast<size_t>(DoneThrough));
    Work W;
    W.Events.assign(Slice, Slice + (T.numEvents() - DoneThrough));
    Ring.push(std::move(W));
    DoneThrough = T.numEvents();
  }
  Ring.close();
  Pool.wait(); // consumer drained; its accumulation is now safe to read
  Finished = true;

  Result R;
  R.Segments = Segments.size();
  std::vector<TraceIndex::SegmentBase> Dir;
  Dir.reserve(Segments.size());
  for (const TraceSegmentRecord &Rec : Segments)
    Dir.push_back({Rec.Events, Rec.BaseInsts, Rec.BaseTaken});
  if (WantFile)
    R.FileBytes =
        assembleSegmentedTrace(NumBlocks, T.numEvents(), T.totalInsts(),
                               Budget, T.finalCounts(), Segments);
  R.Index = std::make_shared<TraceIndex>(
      TraceIndex::stitch(T, Budget, Parts, std::move(Dir)));
  R.WorkMicros = WorkMicros;
  R.FlushMicros = microsSince(Start);
  return R;
}
