//===- core/TraceCache.cpp - Keyed block-trace record store ----------------===//

#include "core/TraceCache.h"

#include "core/TraceIndex.h"
#include "core/TracePipeline.h"
#include "core/TraceSegments.h"
#include "support/Compression.h"
#include "support/Format.h"
#include "support/TextFile.h"
#include "vm/HostTier.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <system_error>

using namespace tpdbt;
using namespace tpdbt::core;

uint64_t tpdbt::core::cacheMaxBytes() {
  const char *Env = std::getenv("TPDBT_CACHE_MAX_BYTES");
  if (!Env || !*Env)
    return 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Env, &End, 10);
  if (End == Env || *End != '\0')
    return 0;
  return V;
}

void TraceCache::touchEntry(const std::string &Path) {
  std::error_code Ec;
  const auto Now = std::filesystem::file_time_type::clock::now();
  std::filesystem::last_write_time(Path, Now, Ec);
  std::filesystem::last_write_time(indexPath(Path), Now, Ec);
}

void TraceCache::enforceBudget() {
  const uint64_t Budget = cacheMaxBytes();
  if (Budget == 0 || Dir.empty())
    return;
  std::lock_guard<std::mutex> Guard(EvictLock);
  struct Entry {
    std::string TracePath;
    uint64_t Bytes = 0;
    std::filesystem::file_time_type Used;
  };
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  std::error_code Ec;
  for (const auto &E : std::filesystem::directory_iterator(Dir, Ec)) {
    if (E.path().extension() != ".trace")
      continue;
    Entry Ent;
    Ent.TracePath = E.path().string();
    Ent.Bytes = std::filesystem::file_size(E.path(), Ec);
    if (Ec)
      continue; // raced with a concurrent eviction or rewrite
    Ent.Used = std::filesystem::last_write_time(E.path(), Ec);
    const uint64_t IdxBytes =
        std::filesystem::file_size(indexPath(Ent.TracePath), Ec);
    if (!Ec)
      Ent.Bytes += IdxBytes;
    Total += Ent.Bytes;
    Entries.push_back(std::move(Ent));
  }
  if (Total <= Budget)
    return;
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.Used < B.Used; });
  for (const Entry &Ent : Entries) {
    if (Total <= Budget)
      break;
    // Removing a disk entry never invalidates live users: the in-memory
    // layer holds its own reference, and the next cold lookup simply
    // re-records (stampede-protected by the per-slot lock as usual).
    std::filesystem::remove(Ent.TracePath, Ec);
    std::filesystem::remove(indexPath(Ent.TracePath), Ec);
    Total -= std::min(Total, Ent.Bytes);
    Stats.Evictions.fetch_add(1, std::memory_order_relaxed);
    Stats.EvictedBytes.fetch_add(Ent.Bytes, std::memory_order_relaxed);
  }
}

bool TraceCache::openSegmented(const std::string &Name,
                               const std::string &Input, uint64_t ExecFp,
                               SegmentedTraceReader &Reader,
                               std::string *Error) {
  if (Dir.empty()) {
    if (Error)
      *Error = "trace cache disk layer is disabled";
    return false;
  }
  const std::string Path = entryPath(Name, Input, ExecFp);
  if (!SegmentedTraceReader::open(Path, Reader, Error))
    return false;
  Stats.SampleDiskOpens.fetch_add(1, std::memory_order_relaxed);
  touchEntry(Path);
  return true;
}

std::string TraceCache::entryPath(const std::string &Name,
                                  const std::string &Input,
                                  uint64_t ExecFp) const {
  return formatString("%s/%s.%s.%016llx.trace", Dir.c_str(), Name.c_str(),
                      Input.c_str(),
                      static_cast<unsigned long long>(ExecFp));
}

std::shared_ptr<const BlockTrace>
TraceCache::loadDisk(const std::string &Path, const guest::Program &Program) {
  auto Packed = readTextFile(Path);
  if (!Packed)
    return nullptr;
  // Sniff the outer framing: segmented (v3) containers start with the
  // raw TPDT magic — each segment payload is its own TPDZ frame inside —
  // while monolithic v1/v2 entries are one whole-file TPDZ frame.
  std::string Raw;
  const std::string *Bytes = &*Packed;
  if (Packed->size() >= 4 && Packed->compare(0, 4, "TPDT", 4) == 0) {
    // already raw
  } else if (decompressBytes(*Packed, Raw, nullptr)) {
    Bytes = &Raw;
  } else {
    Stats.CorruptEntries.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto Trace = std::make_shared<BlockTrace>();
  if (!BlockTrace::parse(*Bytes, *Trace, nullptr) ||
      Trace->numBlocks() != Program.numBlocks()) {
    // Torn, corrupt, or recorded for a different program shape (a stale
    // key collision): treat as a miss and re-record.
    Stats.CorruptEntries.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return Trace;
}

void TraceCache::storeDisk(const std::string &Path,
                           const BlockTrace &Trace) const {
  if (!ensureDirectory(Dir))
    return;
  writeTextFileAtomic(Path, compressBytes(Trace.serialize()));
}

void TraceCache::ensureIndex(const std::string &TracePath,
                             const BlockTrace &Trace) {
  const std::string IdxPath = indexPath(TracePath);
  if (auto Packed = readTextFile(IdxPath)) {
    std::string Raw;
    auto Idx = std::make_shared<TraceIndex>();
    if (decompressBytes(*Packed, Raw, nullptr) &&
        TraceIndex::parse(Raw, *Idx, nullptr) &&
        Trace.adoptIndex(std::move(Idx))) {
      Stats.IndexHits.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Torn, corrupt, or written for a different trace (stale key
    // collision): rebuild and rewrite below.
    Stats.CorruptIndexEntries.fetch_add(1, std::memory_order_relaxed);
  }
  auto Start = std::chrono::steady_clock::now();
  const TraceIndex &Idx = Trace.index();
  auto End = std::chrono::steady_clock::now();
  Stats.IndexBuilds.fetch_add(1, std::memory_order_relaxed);
  Stats.IndexMicros.fetch_add(
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count(),
      std::memory_order_relaxed);
  writeTextFileAtomic(IdxPath, compressBytes(Idx.serialize()));
}

std::shared_ptr<const BlockTrace>
TraceCache::get(const std::string &Name, const std::string &Input,
                uint64_t ExecFp, const guest::Program &Program,
                uint64_t MaxBlocks) {
  Slot *S;
  {
    std::string Key = formatString("%s.%s.%016llx", Name.c_str(),
                                   Input.c_str(),
                                   static_cast<unsigned long long>(ExecFp));
    std::lock_guard<std::mutex> Guard(SlotsLock);
    S = &Slots[Key];
  }
  // Per-slot lock: lookups of different inputs record concurrently, while
  // racing lookups of the same input serialize and share one recording.
  std::lock_guard<std::mutex> Guard(S->Lock);
  if (auto Held = S->Trace.lock()) {
    Stats.MemoryHits.fetch_add(1, std::memory_order_relaxed);
    return Held;
  }

  std::string Path;
  if (!Dir.empty()) {
    Path = entryPath(Name, Input, ExecFp);
    if (auto FromDisk = loadDisk(Path, Program)) {
      Stats.DiskHits.fetch_add(1, std::memory_order_relaxed);
      ensureIndex(Path, *FromDisk);
      touchEntry(Path); // refresh LRU recency for the bounded store
      S->Trace = FromDisk;
      return FromDisk;
    }
  }

  Stats.Misses.fetch_add(1, std::memory_order_relaxed);
  const uint64_t SegmentBudget = segmentEventBudget();
  auto Start = std::chrono::steady_clock::now();
  vm::HostTierStats Tier;
  std::shared_ptr<BlockTrace> Recorded;
  std::unique_ptr<TracePipeline> Pipe;
  if (SegmentBudget > 0)
    Pipe = std::make_unique<TracePipeline>(SegmentBudget,
                                           Program.numBlocks(),
                                           /*WantFile=*/!Dir.empty());
  Recorded = std::make_shared<BlockTrace>(BlockTrace::record(
      Program, MaxBlocks, &Tier,
      Pipe ? BlockTrace::SegmentProgressFn(
                 [&](const BlockTrace &T) { return Pipe->onProgress(T); })
           : BlockTrace::SegmentProgressFn(),
      SegmentBudget));
  auto End = std::chrono::steady_clock::now();
  Stats.RecordMicros.fetch_add(
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count(),
      std::memory_order_relaxed);
  Stats.HostChainedBlocks.fetch_add(Tier.ChainedBlocks,
                                    std::memory_order_relaxed);
  Stats.HostFoldedIters.fetch_add(Tier.RunFoldedIters,
                                  std::memory_order_relaxed);
  Stats.HostClosedFormIters.fetch_add(Tier.ClosedFormIters,
                                      std::memory_order_relaxed);
  Stats.HostFallbacks.fetch_add(Tier.Fallbacks, std::memory_order_relaxed);
  Stats.JitUnits.fetch_add(Tier.JitUnits, std::memory_order_relaxed);
  Stats.JitBlocks.fetch_add(Tier.JitBlocks, std::memory_order_relaxed);
  Stats.JitLoopIters.fetch_add(Tier.JitLoopIters, std::memory_order_relaxed);
  Stats.JitDeopts.fetch_add(Tier.JitDeopts, std::memory_order_relaxed);
  Stats.JitFlushes.fetch_add(Tier.JitFlushes, std::memory_order_relaxed);
  Stats.JitCompileMicros.fetch_add(Tier.JitCompileMicros,
                                   std::memory_order_relaxed);
  Stats.JitSchedUnits.fetch_add(Tier.JitSchedUnits, std::memory_order_relaxed);
  Stats.JitReorderedOps.fetch_add(Tier.JitReorderedOps,
                                  std::memory_order_relaxed);
  Stats.JitStubsDeduped.fetch_add(Tier.JitStubsDeduped,
                                  std::memory_order_relaxed);
  if (Pipe) {
    // Streamed path: the pipeline already compressed and indexed every
    // segment behind the recording; finish() drains the tail, assembles
    // the v3 container, and stitches the index — no separate serialize,
    // compress, or index build remains.
    TracePipeline::Result R = Pipe->finish(*Recorded);
    Stats.StreamedRecords.fetch_add(1, std::memory_order_relaxed);
    Stats.SegmentsPiped.fetch_add(R.Segments, std::memory_order_relaxed);
    Stats.PipelineMicros.fetch_add(R.WorkMicros, std::memory_order_relaxed);
    Stats.FlushMicros.fetch_add(R.FlushMicros, std::memory_order_relaxed);
    Recorded->adoptIndex(R.Index);
    if (!Dir.empty() && ensureDirectory(Dir)) {
      writeTextFileAtomic(Path, R.FileBytes);
      writeTextFileAtomic(indexPath(Path),
                          compressBytes(R.Index->serialize()));
    }
  } else if (!Dir.empty()) {
    storeDisk(Path, *Recorded);
    ensureIndex(Path, *Recorded);
  }
  if (!Dir.empty())
    enforceBudget();
  S->Trace = Recorded;
  return Recorded;
}
