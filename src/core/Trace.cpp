//===- core/Trace.cpp - Block-event trace record / replay ------------------===//

#include "core/Trace.h"

#include "vm/Interpreter.h"

#include <cassert>
#include <memory>

using namespace tpdbt;
using namespace tpdbt::core;
using namespace tpdbt::guest;

namespace {

constexpr char Magic[4] = {'T', 'P', 'D', 'T'};
constexpr uint8_t Version = 1;

void putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>(0x80 | (V & 0x7f)));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

bool getVarint(const std::string &In, size_t &Pos, uint64_t &V) {
  V = 0;
  unsigned Shift = 0;
  while (Pos < In.size()) {
    uint8_t Byte = static_cast<uint8_t>(In[Pos++]);
    V |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return true;
    Shift += 7;
    if (Shift > 63)
      return false;
  }
  return false;
}

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

} // namespace

BlockTrace BlockTrace::record(const Program &P, uint64_t MaxBlocks) {
  BlockTrace T;
  T.setNumBlocks(P.numBlocks());
  vm::Interpreter Interp(P);
  vm::Machine M;
  M.reset(P);
  Interp.run(M, MaxBlocks, [&](BlockId B, const vm::BlockResult &R) {
    TraceEvent E;
    E.Block = B;
    E.Branch = R.IsCondBranch ? (R.Taken ? 2 : 1) : 0;
    E.Insts = R.InstsExecuted;
    T.append(E);
  });
  return T;
}

std::string BlockTrace::serialize() const {
  std::string Out(Magic, 4);
  Out.push_back(static_cast<char>(Version));
  putVarint(Out, NumBlocks);
  putVarint(Out, Events.size());
  int64_t PrevBlock = 0;
  for (const TraceEvent &E : Events) {
    int64_t Delta =
        static_cast<int64_t>(E.Block) - PrevBlock;
    PrevBlock = static_cast<int64_t>(E.Block);
    putVarint(Out, (zigzag(Delta) << 2) | E.Branch);
    putVarint(Out, E.Insts);
  }
  return Out;
}

bool BlockTrace::parse(const std::string &Bytes, BlockTrace &Out,
                       std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (Bytes.size() < 5 || Bytes.compare(0, 4, Magic, 4) != 0)
    return Fail("bad trace magic");
  if (static_cast<uint8_t>(Bytes[4]) != Version)
    return Fail("unsupported trace version");
  size_t Pos = 5;
  uint64_t NumBlocks = 0, NumEvents = 0;
  if (!getVarint(Bytes, Pos, NumBlocks) ||
      !getVarint(Bytes, Pos, NumEvents))
    return Fail("truncated trace header");

  BlockTrace T;
  T.setNumBlocks(NumBlocks);
  int64_t PrevBlock = 0;
  for (uint64_t I = 0; I < NumEvents; ++I) {
    uint64_t Packed = 0, Insts = 0;
    if (!getVarint(Bytes, Pos, Packed) || !getVarint(Bytes, Pos, Insts))
      return Fail("truncated trace event");
    TraceEvent E;
    E.Branch = static_cast<uint8_t>(Packed & 3);
    if (E.Branch > 2)
      return Fail("corrupt branch bits");
    int64_t Block = PrevBlock + unzigzag(Packed >> 2);
    if (Block < 0 || static_cast<uint64_t>(Block) >= NumBlocks)
      return Fail("block id out of range");
    PrevBlock = Block;
    E.Block = static_cast<BlockId>(Block);
    E.Insts = static_cast<uint32_t>(Insts);
    T.append(E);
  }
  if (Pos != Bytes.size())
    return Fail("trailing bytes after trace");
  Out = std::move(T);
  return true;
}

namespace {

vm::BlockResult resultOf(const TraceEvent &E) {
  vm::BlockResult R;
  R.IsCondBranch = E.Branch != 0;
  R.Taken = E.Branch == 2;
  R.InstsExecuted = E.Insts;
  return R;
}

} // namespace

SweepResult tpdbt::core::replaySweep(const BlockTrace &Trace,
                                     const Program &P,
                                     const std::vector<uint64_t> &Thresholds,
                                     const dbt::DbtOptions &Base) {
  assert(Trace.numBlocks() == P.numBlocks() &&
         "trace does not match the program");
  cfg::Cfg G(P);
  const size_t NumEvents = Trace.numEvents();

  std::vector<std::unique_ptr<dbt::TranslationPolicy>> Policies;
  for (uint64_t T : Thresholds) {
    dbt::DbtOptions Opts = Base;
    Opts.Threshold = T;
    Policies.push_back(
        std::make_unique<dbt::TranslationPolicy>(P, G, Opts));
  }
  dbt::DbtOptions AvgOpts = Base;
  AvgOpts.Threshold = 0;
  dbt::TranslationPolicy AvgPolicy(P, G, AvgOpts);

  // Oracle pre-pass: the trace is fixed, so the end-of-run shared counters
  // are computable up front. They arm per-policy settlement detection and
  // serve directly as the final counters for finish().
  std::vector<profile::BlockCounters> Final(P.numBlocks());
  for (size_t I = 0; I < NumEvents; ++I) {
    const TraceEvent &E = Trace.event(I);
    ++Final[E.Block].Use;
    if (E.Branch == 2)
      ++Final[E.Block].Taken;
  }
  for (auto &Policy : Policies)
    Policy->beginOracle(Final);
  AvgPolicy.beginOracle(Final);

  std::vector<dbt::TranslationPolicy *> Active;
  for (auto &Policy : Policies)
    Active.push_back(Policy.get());
  Active.push_back(&AvgPolicy);

  // Retires a settled policy: the stream tail [NextEvent, NumEvents) no
  // longer changes translation state, so burst it through the cheap
  // settled path — or, when nothing was frozen (every tail event is plain
  // profiling), fold it into one closed-form update.
  uint64_t PrefixInsts = 0, PrefixTaken = 0;
  auto retire = [&](dbt::TranslationPolicy *Policy, size_t NextEvent) {
    if (!Policy->anyFrozen()) {
      Policy->fastForwardTail(NumEvents - NextEvent,
                              Trace.takenEvents() - PrefixTaken,
                              Trace.totalInsts() - PrefixInsts);
      return;
    }
    for (size_t J = NextEvent; J < NumEvents; ++J) {
      const TraceEvent &E = Trace.event(J);
      Policy->onBlockEventSettled(E.Block, resultOf(E));
    }
  };

  // Policies with no reachable trigger at all (profiling-only, or every
  // final count below threshold) settle before the first event.
  for (size_t I = 0; I < Active.size();) {
    if (Active[I]->settled()) {
      retire(Active[I], 0);
      Active.erase(Active.begin() + I);
    } else {
      ++I;
    }
  }

  std::vector<profile::BlockCounters> Shared(P.numBlocks());
  for (size_t I = 0; I < NumEvents && !Active.empty(); ++I) {
    const TraceEvent &E = Trace.event(I);
    vm::BlockResult R = resultOf(E);

    profile::BlockCounters &Cnt = Shared[E.Block];
    ++Cnt.Use;
    if (R.IsCondBranch && R.Taken)
      ++Cnt.Taken;
    PrefixInsts += E.Insts;
    if (E.Branch == 2)
      ++PrefixTaken;

    for (size_t PI = 0; PI < Active.size();) {
      Active[PI]->onBlockEvent(E.Block, R, Shared);
      if (Active[PI]->settled()) {
        retire(Active[PI], I + 1);
        Active.erase(Active.begin() + PI);
      } else {
        ++PI;
      }
    }
  }

  SweepResult Out;
  for (auto &Policy : Policies)
    Out.PerThreshold.push_back(
        Policy->finish(Final, NumEvents, Trace.totalInsts()));
  Out.Average = AvgPolicy.finish(Final, NumEvents, Trace.totalInsts());
  return Out;
}
