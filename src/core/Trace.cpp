//===- core/Trace.cpp - Block-event trace record / replay ------------------===//

#include "core/Trace.h"

#include "core/TraceIndex.h"
#include "core/TraceSegments.h"
#include "support/Compression.h"
#include "support/ThreadPool.h"
#include "support/Varint.h"
#include "vm/HostTier.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <memory>

using namespace tpdbt;
using namespace tpdbt::core;
using namespace tpdbt::guest;

namespace {

constexpr char Magic[4] = {'T', 'P', 'D', 'T'};
/// v2 added the final per-block counter table; v1 entries (no table)
/// remain parseable. v3 (the segmented container, written when
/// TPDBT_SEGMENT_EVENTS is nonzero) lives in core/TraceSegments.cpp;
/// parse() dispatches to it below.
constexpr uint8_t Version = 2;

} // namespace

BlockTrace::BlockTrace(const BlockTrace &Other)
    : Events(Other.Events), Final(Other.Final), NumBlocks(Other.NumBlocks),
      TotalInsts(Other.TotalInsts), TakenEvents(Other.TakenEvents),
      Index(Other.sharedIndex()) {}

BlockTrace::BlockTrace(BlockTrace &&Other) noexcept
    : Events(std::move(Other.Events)), Final(std::move(Other.Final)),
      NumBlocks(Other.NumBlocks), TotalInsts(Other.TotalInsts),
      TakenEvents(Other.TakenEvents), Index(Other.sharedIndex()) {}

BlockTrace &BlockTrace::operator=(const BlockTrace &Other) {
  if (this == &Other)
    return *this;
  Events = Other.Events;
  Final = Other.Final;
  NumBlocks = Other.NumBlocks;
  TotalInsts = Other.TotalInsts;
  TakenEvents = Other.TakenEvents;
  std::lock_guard<std::mutex> Guard(IndexLock);
  Index = Other.sharedIndex();
  return *this;
}

BlockTrace &BlockTrace::operator=(BlockTrace &&Other) noexcept {
  if (this == &Other)
    return *this;
  Events = std::move(Other.Events);
  Final = std::move(Other.Final);
  NumBlocks = Other.NumBlocks;
  TotalInsts = Other.TotalInsts;
  TakenEvents = Other.TakenEvents;
  std::lock_guard<std::mutex> Guard(IndexLock);
  Index = Other.sharedIndex();
  return *this;
}

const TraceIndex &BlockTrace::index() const {
  std::lock_guard<std::mutex> Guard(IndexLock);
  if (!Index)
    Index = std::make_shared<TraceIndex>(TraceIndex::build(*this));
  return *Index;
}

bool BlockTrace::adoptIndex(std::shared_ptr<const TraceIndex> Idx) const {
  if (!Idx || !Idx->matches(*this))
    return false;
  std::lock_guard<std::mutex> Guard(IndexLock);
  if (!Index)
    Index = std::move(Idx);
  return true;
}

std::shared_ptr<const TraceIndex> BlockTrace::sharedIndex() const {
  std::lock_guard<std::mutex> Guard(IndexLock);
  return Index;
}

namespace {

/// HostTier sink writing straight into a BlockTrace: self-loop runs use
/// the bulk appendRun() path, chain batches append their pre-computed
/// events, and plain events append as before. Expanded in order, the
/// result is byte-identical to the per-event recording.
///
/// When a segment callback is armed, each delivery ends with one integer
/// compare against the next boundary; crossings hand the trace to the
/// callback, which returns the boundary to watch for next. Batched
/// deliveries (runs, chains) check once after the whole batch, so a
/// crossing can overshoot the boundary — the callback cuts segments by
/// its own budget arithmetic, not by the overshoot point.
struct RecordSink {
  BlockTrace &T;
  const BlockTrace::SegmentProgressFn *OnSegment = nullptr;
  uint64_t NextBoundary = 0; ///< 0 = segment callback disabled

  void boundaryCheck() {
    if (NextBoundary && T.numEvents() >= NextBoundary)
      NextBoundary = (*OnSegment)(T);
  }
  void onEvent(BlockId B, const vm::BlockResult &R) {
    TraceEvent E;
    E.Block = B;
    E.Branch = R.IsCondBranch ? (R.Taken ? 2 : 1) : 0;
    E.Insts = R.InstsExecuted;
    T.append(E);
    boundaryCheck();
  }
  void onRun(BlockId B, const vm::BlockResult &R, uint64_t Count) {
    TraceEvent E;
    E.Block = B;
    E.Branch = R.IsCondBranch ? (R.Taken ? 2 : 1) : 0;
    E.Insts = R.InstsExecuted;
    T.appendRun(E, Count);
    boundaryCheck();
  }
  void onChain(const vm::SbEvent *Events, size_t Count) {
    for (size_t I = 0; I < Count; ++I)
      T.append(TraceEvent{Events[I].Block, Events[I].Branch,
                          Events[I].Insts});
    boundaryCheck();
  }
};

} // namespace

BlockTrace BlockTrace::record(const Program &P, uint64_t MaxBlocks,
                              vm::HostTierStats *TierStats,
                              const SegmentProgressFn &OnSegment,
                              uint64_t SegmentBudget) {
  BlockTrace T;
  T.setNumBlocks(P.numBlocks());
  // Reserve the whole event budget up front (capped — reserved pages are
  // only faulted in when written, so overshooting is nearly free, while
  // letting the vector double its way to a multi-megabyte trace costs
  // more than the event stores themselves).
  T.reserveEvents(static_cast<size_t>(
      std::min<uint64_t>(MaxBlocks, uint64_t(1) << 24)));
  vm::Interpreter Interp(P);
  vm::Machine M;
  M.reset(P);
  RecordSink Sink{T, OnSegment ? &OnSegment : nullptr,
                  OnSegment ? SegmentBudget : 0};
  if (vm::HostTier::enabled()) {
    vm::HostTier Tier(Interp);
    Tier.run(M, MaxBlocks, Sink);
    if (TierStats)
      *TierStats += Tier.stats();
    return T;
  }
  Interp.run(M, MaxBlocks, [&](BlockId B, const vm::BlockResult &R) {
    Sink.onEvent(B, R);
  });
  return T;
}

std::string BlockTrace::serialize() const {
  std::string Out(Magic, 4);
  Out.push_back(static_cast<char>(Version));
  putVarint(Out, NumBlocks);
  putVarint(Out, Events.size());
  // v2 counter table: the end-of-run shared counters, so replays arm the
  // retirement oracle and size the index without an O(events) pre-pass.
  for (size_t B = 0; B < NumBlocks; ++B) {
    putVarint(Out, Final[B].Use);
    putVarint(Out, Final[B].Taken);
  }
  int64_t PrevBlock = 0;
  for (const TraceEvent &E : Events) {
    int64_t Delta =
        static_cast<int64_t>(E.Block) - PrevBlock;
    PrevBlock = static_cast<int64_t>(E.Block);
    putVarint(Out, (zigzagEncode(Delta) << 2) | E.Branch);
    putVarint(Out, E.Insts);
  }
  return Out;
}

std::string BlockTrace::serializeSegmented(uint64_t Budget) const {
  assert(Budget >= 1 && "segment budget must be positive");
  std::vector<TraceSegmentRecord> Segments;
  Segments.reserve(Events.size() / Budget + 1);
  uint64_t BaseInsts = 0, BaseTaken = 0;
  for (size_t At = 0; At < Events.size();) {
    const size_t N =
        static_cast<size_t>(std::min<uint64_t>(Budget, Events.size() - At));
    TraceSegmentRecord Rec;
    Rec.Events = static_cast<uint32_t>(N);
    Rec.BaseInsts = BaseInsts;
    Rec.BaseTaken = BaseTaken;
    Rec.Payload = compressBytes(encodeSegmentEvents(&Events[At], N));
    for (size_t I = At; I < At + N; ++I) {
      BaseInsts += Events[I].Insts;
      if (Events[I].Branch == 2)
        ++BaseTaken;
    }
    Segments.push_back(std::move(Rec));
    At += N;
  }
  return assembleSegmentedTrace(NumBlocks, Events.size(), TotalInsts, Budget,
                                Final, Segments);
}

namespace {

/// Parses the segmented (v3) container: header validation in
/// parseSegmentedHeader, then each payload frame inflated and decoded in
/// order, with the directory's prefix-sum bases cross-checked against
/// the accumulating trace as each segment lands.
bool parseSegmented(const std::string &Bytes, BlockTrace &Out,
                    std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  SegmentedTraceHeader H;
  if (!parseSegmentedHeader(Bytes, Bytes.size(), H, Error))
    return false;
  BlockTrace T;
  T.setNumBlocks(H.NumBlocks);
  T.reserveEvents(H.NumEvents);
  std::vector<TraceEvent> Buf;
  for (const SegmentedTraceHeader::Entry &Ent : H.Directory) {
    if (Ent.BaseInsts != T.totalInsts() || Ent.BaseTaken != T.takenEvents())
      return Fail("segment bases disagree with events");
    std::string Raw;
    if (!decompressBytes(
            Bytes.substr(static_cast<size_t>(Ent.PayloadOffset),
                         static_cast<size_t>(Ent.PayloadBytes)),
            Raw, Error))
      return false;
    Buf.clear();
    if (!decodeSegmentEvents(Raw, Ent.Events, H.NumBlocks, Buf, Error))
      return false;
    for (const TraceEvent &E : Buf)
      T.append(E);
  }
  if (T.totalInsts() != H.TotalInsts)
    return Fail("trace totals disagree with events");
  for (uint64_t B = 0; B < H.NumBlocks; ++B)
    if (T.finalCounts()[B].Use != H.Final[B].Use ||
        T.finalCounts()[B].Taken != H.Final[B].Taken)
      return Fail("trace counter table disagrees with events");
  Out = std::move(T);
  return true;
}

} // namespace

bool BlockTrace::parse(const std::string &Bytes, BlockTrace &Out,
                       std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (Bytes.size() < 5 || Bytes.compare(0, 4, Magic, 4) != 0)
    return Fail("bad trace magic");
  const uint8_t Ver = static_cast<uint8_t>(Bytes[4]);
  if (Ver == 3)
    return parseSegmented(Bytes, Out, Error);
  if (Ver != 1 && Ver != 2)
    return Fail("unsupported trace version");
  size_t Pos = 5;
  uint64_t NumBlocks = 0, NumEvents = 0;
  if (!getVarint(Bytes, Pos, NumBlocks) ||
      !getVarint(Bytes, Pos, NumEvents))
    return Fail("truncated trace header");
  // Each block costs >= 2 header bytes (v2) and each event >= 2 payload
  // bytes, so either count exceeding the byte size marks corruption
  // before any allocation happens.
  if (NumBlocks > Bytes.size() || NumEvents > Bytes.size())
    return Fail("implausible trace header");

  std::vector<profile::BlockCounters> Declared;
  if (Ver == 2) {
    Declared.resize(NumBlocks);
    for (uint64_t B = 0; B < NumBlocks; ++B)
      if (!getVarint(Bytes, Pos, Declared[B].Use) ||
          !getVarint(Bytes, Pos, Declared[B].Taken))
        return Fail("truncated trace counter table");
  }

  BlockTrace T;
  T.setNumBlocks(NumBlocks);
  T.reserveEvents(NumEvents);
  int64_t PrevBlock = 0;
  for (uint64_t I = 0; I < NumEvents; ++I) {
    uint64_t Packed = 0, Insts = 0;
    if (!getVarint(Bytes, Pos, Packed) || !getVarint(Bytes, Pos, Insts))
      return Fail("truncated trace event");
    TraceEvent E;
    E.Branch = static_cast<uint8_t>(Packed & 3);
    if (E.Branch > 2)
      return Fail("corrupt branch bits");
    int64_t Block = PrevBlock + zigzagDecode(Packed >> 2);
    if (Block < 0 || static_cast<uint64_t>(Block) >= NumBlocks)
      return Fail("block id out of range");
    PrevBlock = Block;
    E.Block = static_cast<BlockId>(Block);
    E.Insts = static_cast<uint32_t>(Insts);
    T.append(E);
  }
  if (Pos != Bytes.size())
    return Fail("trailing bytes after trace");
  if (Ver == 2)
    for (uint64_t B = 0; B < NumBlocks; ++B)
      if (T.Final[B].Use != Declared[B].Use ||
          T.Final[B].Taken != Declared[B].Taken)
        return Fail("trace counter table disagrees with events");
  Out = std::move(T);
  return true;
}

namespace {

vm::BlockResult resultOf(const TraceEvent &E) {
  vm::BlockResult R;
  R.IsCondBranch = E.Branch != 0;
  R.Taken = E.Branch == 2;
  R.InstsExecuted = E.Insts;
  return R;
}

constexpr uint32_t NoFreeze = ~0u;

/// Walks the optimized sub-stream — every occurrence of a frozen block
/// after its freeze position, in global order — through the policy's
/// region-context automaton. A bitmap over event positions marks the
/// sub-stream; while the automaton is inside a region the member events
/// are contiguous in the trace (region successor edges mirror the actual
/// CFG successors and every member is frozen), so runs are consumed
/// directly, and complete loop-region iterations collapse into closed
/// form via the taken-bit prefix sums.
void walkOptimized(const BlockTrace &Trace, const TraceIndex &Idx,
                   dbt::TranslationPolicy &Policy,
                   const std::vector<uint32_t> &FreezePos,
                   const std::vector<BlockId> &FrozenOrder) {
  const uint32_t E = static_cast<uint32_t>(Trace.numEvents());
  const size_t Words = (static_cast<size_t>(E) + 63) / 64;
  std::vector<uint64_t> Bits(Words, 0);
  // The walk consumes each block's occurrences strictly in rank order
  // (every post-freeze event of a frozen block is in the sub-stream), so
  // a per-block cursor tracks the next unconsumed rank with O(1) updates
  // instead of position binary searches.
  std::vector<uint32_t> Cursor(Trace.numBlocks(), 0);

  // Region membership decides which blocks need the walk at all. Regions
  // grow only through unfrozen blocks, so a block's node appearances are
  // fixed the round it freezes: a frozen block in no region executes
  // every occurrence off-trace, and one whose sole appearance is the
  // single node of a region it enters has a per-occurrence behavior
  // determined by its own branch outcome. Both collapse to closed forms
  // over the occurrence prefix sums (Policy.h analytic section) and stay
  // out of the bitmap; only multi-node region members are walked.
  const std::vector<region::Region> &AllRegions = Policy.regions();
  std::vector<uint8_t> NodeCount(Trace.numBlocks(), 0);
  std::vector<int32_t> EntryOf(Trace.numBlocks(), -1);
  for (size_t R = 0; R < AllRegions.size(); ++R) {
    for (const region::RegionNode &Node : AllRegions[R].Nodes)
      if (NodeCount[Node.Orig] < 2)
        ++NodeCount[Node.Orig];
    EntryOf[AllRegions[R].entryBlock()] = static_cast<int32_t>(R);
  }

  uint32_t First = E;
  for (BlockId B : FrozenOrder) {
    const uint32_t Cnt = Idx.occurrences(B);
    const uint32_t From = Idx.usesThrough(B, FreezePos[B]);
    Cursor[B] = From;
    if (From >= Cnt)
      continue;
    const uint64_t Insts =
        Idx.instsOfFirst(B, Cnt) - Idx.instsOfFirst(B, From);
    if (NodeCount[B] == 0) {
      Policy.analyticOffTraceBlock(Insts);
      continue;
    }
    const int32_t R = EntryOf[B];
    if (NodeCount[B] == 1 && R >= 0 && AllRegions[R].Nodes.size() == 1) {
      const uint32_t Taken =
          Idx.takenOfFirst(B, Cnt) - Idx.takenOfFirst(B, From);
      const bool LastTaken =
          Idx.takenOfFirst(B, Cnt) != Idx.takenOfFirst(B, Cnt - 1);
      Policy.analyticSingletonRegion(R, Taken, (Cnt - From) - Taken, Insts,
                                     LastTaken);
      continue;
    }
    First = std::min(First, Idx.position(B, From));
    for (uint32_t K = From; K < Cnt; ++K) {
      uint32_t Pos = Idx.position(B, K);
      Bits[Pos >> 6] |= 1ull << (Pos & 63);
    }
  }

  auto nextSet = [&](uint32_t From) -> uint32_t {
    if (From >= E)
      return E;
    size_t W = From >> 6;
    uint64_t Word = Bits[W] & (~0ull << (From & 63));
    while (!Word) {
      if (++W >= Words)
        return E;
      Word = Bits[W];
    }
    return static_cast<uint32_t>((W << 6) + std::countr_zero(Word));
  };
  auto isSet = [&](uint32_t Pos) {
    return (Bits[Pos >> 6] >> (Pos & 63)) & 1;
  };

  // Loop-iteration folding. When the automaton sits at a loop region's
  // head, the next events spell out one complete iteration; walking that
  // single iteration captures whichever path the loop is currently
  // taking (multi-node bodies and diamond arms included), and the number
  // of consecutive iterations repeating the same conditional outcomes is
  // readable from the taken-bit prefix sums. Those iterations are forced
  // — region successor edges mirror the CFG, so matching outcomes imply
  // a matching event sequence — and collapse into one closed-form
  // update. Returns the position after the folded run (== \p I when
  // nothing folds: the iteration exits the region, truncates, or the
  // path revisits a conditional block).
  const std::vector<region::Region> &Regions = Policy.regions();
  struct PathStep {
    BlockId B;
    bool Taken;
  };
  std::vector<PathStep> Constrained;
  std::vector<BlockId> PathBlocks;
  auto foldLoopRun = [&](uint32_t I) -> uint32_t {
    const region::Region &R =
        Regions[static_cast<size_t>(Policy.contextRegion())];
    if (R.Kind != region::RegionKind::Loop || Policy.contextNode() != 0)
      return I;
    Constrained.clear();
    PathBlocks.clear();
    uint32_t Pos = I;
    size_t NodeIdx = 0;
    for (size_t Steps = 0; Steps < R.Nodes.size(); ++Steps) {
      if (Pos >= E || !isSet(Pos))
        return I;
      const region::RegionNode &Node = R.Nodes[NodeIdx];
      const TraceEvent &Ev = Trace.event(Pos);
      if (Ev.Block != Node.Orig)
        return I;
      PathBlocks.push_back(Ev.Block);
      int32_t Succ = Node.TakenSucc;
      if (Node.HasCondBranch) {
        const bool Taken = Ev.Branch == 2;
        // A conditional block duplicated within one iteration would need
        // stride-aware run queries; leave those to the per-event path.
        for (const PathStep &S : Constrained)
          if (S.B == Ev.Block)
            return I;
        Constrained.push_back({Ev.Block, Taken});
        if (!Taken)
          Succ = Node.FallSucc;
      }
      if (Succ >= 0) {
        NodeIdx = static_cast<size_t>(Succ);
        ++Pos;
        continue;
      }
      if (Succ != region::BackEdgeSucc)
        return I; // this iteration leaves the region
      // Cycle closed: fold every iteration until an outcome deviates or
      // the trace ends (only complete in-trace iterations fold; a
      // truncated tail iteration falls back to per-event processing).
      const uint32_t Len = Pos - I + 1;
      uint32_t M = (E - I) / Len;
      for (const PathStep &S : Constrained)
        M = std::min(
            M, Idx.firstOutcomeChange(S.B, Cursor[S.B], S.Taken) -
                   Cursor[S.B]);
      if (M == 0)
        return I;
      // Each path block consumes one occurrence per folded iteration
      // (duplicated unconditional blocks appear once per duplicate).
      for (BlockId B : PathBlocks)
        Cursor[B] += M;
      Policy.analyticLoopIterations(
          M, Idx.instsBefore(I + M * Len) - Idx.instsBefore(I));
      return I + M * Len;
    }
    return I; // no back edge within the node budget
  };

  uint32_t I = First;
  while (I < E) {
    I = nextSet(I);
    if (I >= E)
      break;
    // One contiguous run: process events until the automaton leaves its
    // region (then skip ahead to the next optimized position).
    for (;;) {
      if (Policy.inRegionContext()) {
        const uint32_t Next = foldLoopRun(I);
        if (Next != I) {
          I = Next;
          if (I >= E)
            break;
          continue; // at the head of a deviating (or partial) iteration
        }
      }
      if (!isSet(I))
        break; // a profiling event interleaves; context is preserved
      const TraceEvent &Ev = Trace.event(I);
      ++Cursor[Ev.Block];
      Policy.analyticOptimizedEvent(Ev.Block, resultOf(Ev));
      ++I;
      if (!Policy.inRegionContext() || I >= E)
        break;
    }
  }
}

/// Evaluates one non-adaptive policy analytically: reconstructs the
/// freeze timeline from occurrence positions, accounts the profiling
/// phase in closed form, and walks only the optimized sub-stream.
profile::ProfileSnapshot evaluateIndexed(const BlockTrace &Trace,
                                         const TraceIndex &Idx,
                                         const Program &P, const cfg::Cfg &G,
                                         const dbt::DbtOptions &Opts) {
  assert(!Opts.Adaptive.Enabled &&
         "analytic evaluation requires a static freeze timeline");
  dbt::TranslationPolicy Policy(P, G, Opts);
  const size_t N = P.numBlocks();
  const uint32_t E = static_cast<uint32_t>(Trace.numEvents());
  const std::vector<profile::BlockCounters> &Final = Trace.finalCounts();
  const uint64_t T = Opts.Threshold;

  std::vector<uint32_t> FreezePos(N, NoFreeze);
  std::vector<BlockId> FrozenOrder;

  if (T > 0) {
    // Threshold-crossing timeline: policy state only changes when some
    // block reaches its T-th occurrence (pool registration, possibly
    // firing the pool-size trigger) or its 2T-th (the registered-twice
    // trigger). All crossing positions are distinct events, so sorting
    // them reproduces the pump's processing order exactly.
    struct Crossing {
      uint32_t Pos;
      BlockId Block;
      bool Registration; ///< T-th occurrence; false = 2T-th
    };
    std::vector<Crossing> Timeline;
    for (size_t B = 0; B < N; ++B) {
      const uint64_t Use = Final[B].Use;
      if (Use < T)
        continue;
      const auto Id = static_cast<BlockId>(B);
      Timeline.push_back(
          {Idx.position(Id, static_cast<uint32_t>(T - 1)), Id, true});
      if (Use >= 2 * T)
        Timeline.push_back(
            {Idx.position(Id, static_cast<uint32_t>(2 * T - 1)), Id, false});
    }
    std::sort(Timeline.begin(), Timeline.end(),
              [](const Crossing &A, const Crossing &B) {
                return A.Pos < B.Pos;
              });

    std::vector<profile::BlockCounters> SharedAt(N);
    auto fireTrigger = [&](uint32_t Pos) {
      // Materialize every block's shared counters as of this event
      // (inclusive) — exactly the Shared vector the pump would pass.
      for (size_t B = 0; B < N; ++B)
        SharedAt[B] = Idx.countersThrough(static_cast<BlockId>(B), Pos);
      Policy.analyticTrigger(SharedAt);
      for (BlockId F : Policy.lastFrozen()) {
        FreezePos[F] = Pos;
        FrozenOrder.push_back(F);
      }
    };
    for (const Crossing &X : Timeline) {
      if (Policy.isFrozen(X.Block))
        continue; // froze at an earlier crossing: no further triggers
      if (X.Registration) {
        if (Policy.analyticRegister(X.Block))
          fireTrigger(X.Pos); // pool reached PoolLimit
      } else if (Policy.isInPool(X.Block)) {
        fireTrigger(X.Pos); // registered twice while still unoptimized
      }
    }
  }

  // Profiling phase in closed form: block b executes instrumented for its
  // first K_b occurrences — up to and including its freeze position, or
  // all of them when never frozen.
  uint64_t ProfEvents = 0, ProfTaken = 0, ProfInsts = 0;
  for (size_t B = 0; B < N; ++B) {
    const auto Id = static_cast<BlockId>(B);
    const uint32_t K = FreezePos[B] == NoFreeze
                           ? Idx.occurrences(Id)
                           : Idx.usesThrough(Id, FreezePos[B]);
    ProfEvents += K;
    ProfTaken += Idx.takenOfFirst(Id, K);
    ProfInsts += Idx.instsOfFirst(Id, K);
  }
  Policy.analyticAddProfiling(ProfEvents, ProfTaken, ProfInsts);

  if (!FrozenOrder.empty())
    walkOptimized(Trace, Idx, Policy, FreezePos, FrozenOrder);

  return Policy.finish(Final, E, Trace.totalInsts());
}

} // namespace

SweepResult tpdbt::core::pumpSweepChunks(
    const Program &P, const std::vector<uint64_t> &Thresholds,
    const dbt::DbtOptions &Base, uint64_t NumEvents, uint64_t TotalInsts,
    uint64_t TakenTotal, const std::vector<profile::BlockCounters> &Final,
    const std::function<size_t(const TraceEvent *&)> &NextChunk) {
  cfg::Cfg G(P);

  std::vector<std::unique_ptr<dbt::TranslationPolicy>> Policies;
  for (uint64_t T : Thresholds) {
    dbt::DbtOptions Opts = Base;
    Opts.Threshold = T;
    Policies.push_back(
        std::make_unique<dbt::TranslationPolicy>(P, G, Opts));
  }
  dbt::DbtOptions AvgOpts = Base;
  AvgOpts.Threshold = 0;
  dbt::TranslationPolicy AvgPolicy(P, G, AvgOpts);

  // The stream is fixed, so its end-of-run shared counters arm per-policy
  // settlement detection and serve directly as the final counters for
  // finish().
  for (auto &Policy : Policies)
    Policy->beginOracle(Final);
  AvgPolicy.beginOracle(Final);

  std::vector<dbt::TranslationPolicy *> Active;
  for (auto &Policy : Policies)
    Active.push_back(Policy.get());
  Active.push_back(&AvgPolicy);

  // A settled policy's remaining events no longer change translation
  // state. With nothing frozen every tail event is plain profiling and
  // folds into one closed-form update; otherwise the policy moves to the
  // walker list and receives the rest of the stream through the cheap
  // settled path as it arrives — the chunked pump cannot look ahead, so
  // the tail cannot be burst through eagerly the way a whole-trace pump
  // would. Per policy the delivered sequence is identical either way.
  uint64_t PrefixInsts = 0, PrefixTaken = 0, Delivered = 0;
  std::vector<dbt::TranslationPolicy *> Walkers;
  auto retire = [&](dbt::TranslationPolicy *Policy) {
    if (!Policy->anyFrozen()) {
      Policy->fastForwardTail(NumEvents - Delivered,
                              TakenTotal - PrefixTaken,
                              TotalInsts - PrefixInsts);
      return;
    }
    Walkers.push_back(Policy);
  };

  // Policies with no reachable trigger at all (profiling-only, or every
  // final count below threshold) settle before the first event.
  for (size_t I = 0; I < Active.size();) {
    if (Active[I]->settled()) {
      retire(Active[I]);
      Active.erase(Active.begin() + I);
    } else {
      ++I;
    }
  }

  std::vector<profile::BlockCounters> Shared(P.numBlocks());
  const TraceEvent *Chunk = nullptr;
  while (Delivered < NumEvents && !(Active.empty() && Walkers.empty())) {
    // A zero count before the declared event total means the source
    // failed mid-stream (e.g. a corrupt on-disk segment); stop pumping —
    // the caller detects and reports the failure, the partial result is
    // discarded.
    const size_t Count = NextChunk(Chunk);
    if (Count == 0)
      break;
    for (size_t I = 0; I < Count; ++I) {
      if (Active.empty() && Walkers.empty())
        break; // nobody left to feed; totals were folded at retirement
      const TraceEvent &E = Chunk[I];
      vm::BlockResult R = resultOf(E);
      ++Delivered;

      // Walkers first: a policy that settles at this event joins the
      // list afterwards and starts walking at the next event, matching
      // the whole-trace pump's tail replay from NextEvent = I + 1.
      for (dbt::TranslationPolicy *W : Walkers)
        W->onBlockEventSettled(E.Block, R);
      if (Active.empty())
        continue; // shared counters no longer observed by anyone

      profile::BlockCounters &Cnt = Shared[E.Block];
      ++Cnt.Use;
      if (R.IsCondBranch && R.Taken)
        ++Cnt.Taken;
      PrefixInsts += E.Insts;
      if (E.Branch == 2)
        ++PrefixTaken;

      for (size_t PI = 0; PI < Active.size();) {
        Active[PI]->onBlockEvent(E.Block, R, Shared);
        if (Active[PI]->settled()) {
          retire(Active[PI]);
          Active.erase(Active.begin() + PI);
        } else {
          ++PI;
        }
      }
    }
  }

  SweepResult Out;
  for (auto &Policy : Policies)
    Out.PerThreshold.push_back(
        Policy->finish(Final, NumEvents, TotalInsts));
  Out.Average = AvgPolicy.finish(Final, NumEvents, TotalInsts);
  return Out;
}

SweepResult tpdbt::core::replaySweepEvents(
    const BlockTrace &Trace, const Program &P,
    const std::vector<uint64_t> &Thresholds, const dbt::DbtOptions &Base) {
  assert(Trace.numBlocks() == P.numBlocks() &&
         "trace does not match the program");
  bool Handed = false;
  return pumpSweepChunks(
      P, Thresholds, Base, Trace.numEvents(), Trace.totalInsts(),
      Trace.takenEvents(), Trace.finalCounts(),
      [&](const TraceEvent *&Chunk) -> size_t {
        if (Handed || Trace.numEvents() == 0)
          return 0;
        Handed = true;
        Chunk = &Trace.event(0);
        return Trace.numEvents();
      });
}

SweepResult tpdbt::core::replaySweep(const BlockTrace &Trace,
                                     const Program &P,
                                     const std::vector<uint64_t> &Thresholds,
                                     const dbt::DbtOptions &Base,
                                     unsigned Jobs) {
  assert(Trace.numBlocks() == P.numBlocks() &&
         "trace does not match the program");
  // Duplicate thresholds share one evaluation; Unique preserves
  // first-occurrence order, so without duplicates SlotOf is the identity.
  std::vector<uint64_t> Unique;
  std::vector<size_t> SlotOf(Thresholds.size());
  for (size_t I = 0; I < Thresholds.size(); ++I) {
    size_t J = 0;
    while (J < Unique.size() && Unique[J] != Thresholds[I])
      ++J;
    if (J == Unique.size())
      Unique.push_back(Thresholds[I]);
    SlotOf[I] = J;
  }

  SweepResult Shared;
  if (Base.Adaptive.Enabled) {
    // Adaptive re-optimization thaws frozen blocks, so no static freeze
    // timeline exists: pump the events.
    Shared = replaySweepEvents(Trace, P, Unique, Base);
  } else {
    const TraceIndex &Idx = Trace.index();
    cfg::Cfg G(P);
    Shared.PerThreshold.resize(Unique.size());
    // Per-threshold snapshots are independent units; dispatch them on the
    // worker pool alongside the per-benchmark parallelism. Results are
    // stored by index, so they are identical at any job count.
    parallelFor(Unique.size() + 1, Jobs, [&](size_t I) {
      dbt::DbtOptions Opts = Base;
      Opts.Threshold = I < Unique.size() ? Unique[I] : 0;
      profile::ProfileSnapshot S = evaluateIndexed(Trace, Idx, P, G, Opts);
      if (I < Unique.size())
        Shared.PerThreshold[I] = std::move(S);
      else
        Shared.Average = std::move(S);
    });
  }

  if (Unique.size() == Thresholds.size())
    return Shared;
  SweepResult Out;
  Out.Average = std::move(Shared.Average);
  Out.PerThreshold.reserve(Thresholds.size());
  for (size_t I = 0; I < Thresholds.size(); ++I)
    Out.PerThreshold.push_back(Shared.PerThreshold[SlotOf[I]]);
  return Out;
}
