//===- numeric/Matrix.h - Dense matrix and linear solving -------*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense matrices and LU solving with partial pivoting. The paper uses the
/// Intel MKL linear solver to propagate block frequencies to duplicated
/// blocks in the NAVEP normalization (Section 3.1, "Markov Modeling of
/// Control Flow"); this module is its stand-in. The systems are small (one
/// unknown per duplicated block), so a dense direct solve is exact and
/// cheap.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_NUMERIC_MATRIX_H
#define TPDBT_NUMERIC_MATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace tpdbt {
namespace numeric {

/// Row-major dense matrix of doubles.
class DenseMatrix {
public:
  DenseMatrix() = default;
  DenseMatrix(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// Returns this * V. V.size() must equal cols().
  std::vector<double> apply(const std::vector<double> &V) const;

  static DenseMatrix identity(size_t N);

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Solves A * X = B in-place-safe (A and B are copied). Returns false when
/// A is (numerically) singular.
bool solveLu(const DenseMatrix &A, const std::vector<double> &B,
             std::vector<double> &X);

/// Max-norm of the residual A*X - B; used to validate solutions.
double residualNorm(const DenseMatrix &A, const std::vector<double> &X,
                    const std::vector<double> &B);

/// Compressed-sparse-row matrix, built from (row, col, value) triplets.
/// Duplicate entries are summed.
class SparseMatrix {
public:
  struct Triplet {
    size_t Row;
    size_t Col;
    double Value;
  };

  SparseMatrix() = default;

  static SparseMatrix fromTriplets(size_t N, std::vector<Triplet> Entries);

  size_t size() const { return N; }

  /// Returns this * V.
  std::vector<double> apply(const std::vector<double> &V) const;

  /// Visits the entries of row \p R as (Col, Value) via \p Fn.
  template <typename FnT> void forEachInRow(size_t R, FnT &&Fn) const {
    for (size_t I = RowPtr[R]; I < RowPtr[R + 1]; ++I)
      Fn(Col[I], Val[I]);
  }

private:
  size_t N = 0;
  std::vector<size_t> RowPtr;
  std::vector<size_t> Col;
  std::vector<double> Val;
};

/// Gauss-Seidel iteration for A * X = B. Requires non-zero diagonal.
/// Returns true if the max-norm update fell below \p Tol within
/// \p MaxIters sweeps. X is used as the starting guess and holds the
/// result.
bool gaussSeidel(const SparseMatrix &A, const std::vector<double> &B,
                 std::vector<double> &X, size_t MaxIters = 1000,
                 double Tol = 1e-12);

} // namespace numeric
} // namespace tpdbt

#endif // TPDBT_NUMERIC_MATRIX_H
