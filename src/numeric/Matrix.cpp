//===- numeric/Matrix.cpp - Dense matrix and linear solving ----------------===//

#include "numeric/Matrix.h"

#include <algorithm>
#include <cmath>

using namespace tpdbt;
using namespace tpdbt::numeric;

std::vector<double> DenseMatrix::apply(const std::vector<double> &V) const {
  assert(V.size() == NumCols && "dimension mismatch");
  std::vector<double> Out(NumRows, 0.0);
  for (size_t R = 0; R < NumRows; ++R) {
    double Sum = 0.0;
    for (size_t C = 0; C < NumCols; ++C)
      Sum += at(R, C) * V[C];
    Out[R] = Sum;
  }
  return Out;
}

DenseMatrix DenseMatrix::identity(size_t N) {
  DenseMatrix M(N, N, 0.0);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

bool tpdbt::numeric::solveLu(const DenseMatrix &A,
                             const std::vector<double> &B,
                             std::vector<double> &X) {
  assert(A.rows() == A.cols() && "solveLu requires a square matrix");
  assert(B.size() == A.rows() && "rhs dimension mismatch");
  const size_t N = A.rows();
  DenseMatrix M = A;
  X = B;

  for (size_t K = 0; K < N; ++K) {
    // Partial pivoting.
    size_t Pivot = K;
    double Best = std::fabs(M.at(K, K));
    for (size_t R = K + 1; R < N; ++R) {
      double V = std::fabs(M.at(R, K));
      if (V > Best) {
        Best = V;
        Pivot = R;
      }
    }
    if (Best < 1e-300)
      return false; // numerically singular
    if (Pivot != K) {
      for (size_t C = K; C < N; ++C)
        std::swap(M.at(K, C), M.at(Pivot, C));
      std::swap(X[K], X[Pivot]);
    }
    // Eliminate below.
    double Diag = M.at(K, K);
    for (size_t R = K + 1; R < N; ++R) {
      double Factor = M.at(R, K) / Diag;
      if (Factor == 0.0)
        continue;
      M.at(R, K) = 0.0;
      for (size_t C = K + 1; C < N; ++C)
        M.at(R, C) -= Factor * M.at(K, C);
      X[R] -= Factor * X[K];
    }
  }
  // Back substitution.
  for (size_t RI = N; RI-- > 0;) {
    double Sum = X[RI];
    for (size_t C = RI + 1; C < N; ++C)
      Sum -= M.at(RI, C) * X[C];
    X[RI] = Sum / M.at(RI, RI);
  }
  return true;
}

double tpdbt::numeric::residualNorm(const DenseMatrix &A,
                                    const std::vector<double> &X,
                                    const std::vector<double> &B) {
  std::vector<double> AX = A.apply(X);
  double Norm = 0.0;
  for (size_t I = 0; I < B.size(); ++I)
    Norm = std::max(Norm, std::fabs(AX[I] - B[I]));
  return Norm;
}

SparseMatrix SparseMatrix::fromTriplets(size_t N,
                                        std::vector<Triplet> Entries) {
  std::sort(Entries.begin(), Entries.end(),
            [](const Triplet &A, const Triplet &B) {
              return A.Row != B.Row ? A.Row < B.Row : A.Col < B.Col;
            });
  SparseMatrix M;
  M.N = N;
  M.RowPtr.assign(N + 1, 0);
  for (size_t I = 0; I < Entries.size();) {
    size_t J = I + 1;
    double Sum = Entries[I].Value;
    while (J < Entries.size() && Entries[J].Row == Entries[I].Row &&
           Entries[J].Col == Entries[I].Col) {
      Sum += Entries[J].Value;
      ++J;
    }
    assert(Entries[I].Row < N && Entries[I].Col < N &&
           "triplet index out of range");
    M.Col.push_back(Entries[I].Col);
    M.Val.push_back(Sum);
    ++M.RowPtr[Entries[I].Row + 1];
    I = J;
  }
  for (size_t R = 0; R < N; ++R)
    M.RowPtr[R + 1] += M.RowPtr[R];
  return M;
}

std::vector<double> SparseMatrix::apply(const std::vector<double> &V) const {
  assert(V.size() == N && "dimension mismatch");
  std::vector<double> Out(N, 0.0);
  for (size_t R = 0; R < N; ++R) {
    double Sum = 0.0;
    forEachInRow(R, [&](size_t C, double Value) { Sum += Value * V[C]; });
    Out[R] = Sum;
  }
  return Out;
}

bool tpdbt::numeric::gaussSeidel(const SparseMatrix &A,
                                 const std::vector<double> &B,
                                 std::vector<double> &X, size_t MaxIters,
                                 double Tol) {
  const size_t N = A.size();
  assert(B.size() == N && "rhs dimension mismatch");
  X.resize(N, 0.0);
  for (size_t Iter = 0; Iter < MaxIters; ++Iter) {
    double MaxDelta = 0.0;
    for (size_t R = 0; R < N; ++R) {
      double Diag = 0.0;
      double Sum = B[R];
      A.forEachInRow(R, [&](size_t C, double Value) {
        if (C == R)
          Diag = Value;
        else
          Sum -= Value * X[C];
      });
      if (Diag == 0.0)
        return false;
      double NewX = Sum / Diag;
      MaxDelta = std::max(MaxDelta, std::fabs(NewX - X[R]));
      X[R] = NewX;
    }
    if (MaxDelta <= Tol)
      return true;
  }
  return false;
}
