//===- guest/ProgramBuilder.h - Guest program construction ------*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A builder for guest programs: create blocks up front, emit instructions
/// into a current block, and terminate blocks with jumps/branches. The
/// workload generator and the tests use this instead of hand-assembling
/// Program structs.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_GUEST_PROGRAMBUILDER_H
#define TPDBT_GUEST_PROGRAMBUILDER_H

#include "guest/Program.h"

#include <cassert>
#include <string>
#include <vector>

namespace tpdbt {
namespace guest {

/// Incrementally builds a Program. Typical use:
/// \code
///   ProgramBuilder PB("loop");
///   BlockId Head = PB.createBlock("head");
///   BlockId Body = PB.createBlock("body");
///   PB.setEntry(Head);
///   PB.switchTo(Head);
///   PB.movI(0, 100);                    // r0 = 100
///   PB.jump(Body);
///   ...
///   Program P = PB.build();
/// \endcode
class ProgramBuilder {
public:
  explicit ProgramBuilder(std::string Name) { P.Name = std::move(Name); }

  /// Creates a new empty block and returns its id. The block is terminated
  /// with Halt until a terminator is set.
  BlockId createBlock(std::string Name = "");

  /// Sets the program entry block.
  void setEntry(BlockId Id) { P.Entry = Id; }

  /// Makes \p Id the current insertion block.
  void switchTo(BlockId Id);

  BlockId currentBlock() const { return Cur; }

  /// Sets the guest memory size in words.
  void setMemWords(uint64_t Words) { P.MemWords = Words; }

  /// Sets the initial memory image (loaded at word 0).
  void setInitialMem(std::vector<int64_t> Mem);

  /// Appends one word to the initial memory image and returns its address.
  uint64_t appendMemWord(int64_t Value);

  /// Emits a raw instruction into the current block.
  void emit(const Inst &In);

  // --- Convenience emitters (all write into the current block) -----------

  void movI(uint8_t Rd, int64_t Imm);
  void mov(uint8_t Rd, uint8_t Ra);
  void add(uint8_t Rd, uint8_t Ra, uint8_t Rb);
  void sub(uint8_t Rd, uint8_t Ra, uint8_t Rb);
  void mul(uint8_t Rd, uint8_t Ra, uint8_t Rb);
  void addI(uint8_t Rd, uint8_t Ra, int64_t Imm);
  void mulI(uint8_t Rd, uint8_t Ra, int64_t Imm);
  void andI(uint8_t Rd, uint8_t Ra, int64_t Imm);
  void orI(uint8_t Rd, uint8_t Ra, int64_t Imm);
  void xorI(uint8_t Rd, uint8_t Ra, int64_t Imm);
  void shlI(uint8_t Rd, uint8_t Ra, int64_t Imm);
  void shrI(uint8_t Rd, uint8_t Ra, int64_t Imm);
  void xorR(uint8_t Rd, uint8_t Ra, uint8_t Rb);
  void cmpLtU(uint8_t Rd, uint8_t Ra, uint8_t Rb);
  void load(uint8_t Rd, uint8_t Ra, int64_t Imm);
  void store(uint8_t Rb, uint8_t Ra, int64_t Imm);
  void fadd(uint8_t Rd, uint8_t Ra, uint8_t Rb);
  void fmul(uint8_t Rd, uint8_t Ra, uint8_t Rb);
  void nop();

  // --- Terminators --------------------------------------------------------

  void jump(BlockId Target);
  void halt();
  void branch(CondKind Cond, uint8_t Ra, uint8_t Rb, BlockId Taken,
              BlockId Fallthrough);
  void branchImm(CondKind Cond, uint8_t Ra, int64_t Imm, BlockId Taken,
                 BlockId Fallthrough);

  /// Verifies and returns the finished program. Asserts on malformed
  /// programs (builder misuse is a programming error).
  Program build();

  /// Number of blocks created so far.
  size_t numBlocks() const { return P.Blocks.size(); }

private:
  Block &cur();

  Program P;
  BlockId Cur = InvalidBlock;
  std::vector<bool> Terminated;
};

} // namespace guest
} // namespace tpdbt

#endif // TPDBT_GUEST_PROGRAMBUILDER_H
