//===- guest/Assembler.h - Guest ISA text assembler -------------*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small text assembler for the guest ISA, so tests and examples can
/// write programs as readable assembly instead of builder calls.
///
/// Syntax (one statement per line, `;` or `#` start a comment):
///
/// \code
///   .program demo          ; optional program name
///   .memwords 64           ; memory size in words
///   .mem 5 7 -3            ; append initial-memory words
///
///   entry:                 ; first label is the entry block
///       movi  r1, 0
///   head:
///       addi  r1, r1, 1
///       blti  r1, 100, head, exit   ; cond branches: taken first
///   exit:
///       halt
/// \endcode
///
/// Every label starts a new block. A block with no explicit terminator
/// falls through to the next label via an implicit jump. Branch mnemonics
/// are `b<cond>` / `b<cond>i` (beq, bne, blt, bge, bltu, bgeu, beqi,
/// bnei, blti, bgei), plus `jmp label` and `halt`.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_GUEST_ASSEMBLER_H
#define TPDBT_GUEST_ASSEMBLER_H

#include "guest/Program.h"

#include <string>

namespace tpdbt {
namespace guest {

/// Assembles \p Source into a Program. Returns false and fills \p Error
/// (with a line number) on malformed input.
bool assembleProgram(const std::string &Source, Program &Out,
                     std::string *Error);

} // namespace guest
} // namespace tpdbt

#endif // TPDBT_GUEST_ASSEMBLER_H
