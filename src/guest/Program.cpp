//===- guest/Program.cpp - Guest program container -------------------------===//

#include "guest/Program.h"

#include "support/Format.h"

#include <cassert>
#include <sstream>

using namespace tpdbt;
using namespace tpdbt::guest;

uint64_t Program::staticInstCount() const {
  uint64_t N = 0;
  for (const auto &B : Blocks)
    N += B.Insts.size() + 1; // terminator counts as one instruction
  return N;
}

static const Opcode AllOpcodes[] = {
    Opcode::Add,    Opcode::Sub,    Opcode::Mul,    Opcode::Divs,
    Opcode::Rems,   Opcode::And,    Opcode::Or,     Opcode::Xor,
    Opcode::Shl,    Opcode::Shr,    Opcode::Sar,    Opcode::AddI,
    Opcode::MulI,   Opcode::AndI,   Opcode::OrI,    Opcode::XorI,
    Opcode::ShlI,   Opcode::ShrI,   Opcode::CmpEq,  Opcode::CmpLt,
    Opcode::CmpLtU, Opcode::CmpEqI, Opcode::CmpLtI, Opcode::CmpLtUI,
    Opcode::MovI,   Opcode::Mov,    Opcode::Load,   Opcode::Store,
    Opcode::FAdd,   Opcode::FSub,   Opcode::FMul,   Opcode::FDiv,
    Opcode::FConst, Opcode::FCmpLt, Opcode::IToF,   Opcode::FToI,
    Opcode::Nop};

static const CondKind AllCondKinds[] = {
    CondKind::Eq,  CondKind::Ne,  CondKind::Lt,  CondKind::Ge,
    CondKind::LtU, CondKind::GeU, CondKind::EqI, CondKind::NeI,
    CondKind::LtI, CondKind::GeI};

static bool opcodeFromName(const std::string &Name, Opcode &Out) {
  for (Opcode Op : AllOpcodes)
    if (Name == opcodeName(Op)) {
      Out = Op;
      return true;
    }
  return false;
}

static bool condKindFromName(const std::string &Name, CondKind &Out) {
  for (CondKind CK : AllCondKinds)
    if (Name == condKindName(CK)) {
      Out = CK;
      return true;
    }
  return false;
}

bool tpdbt::guest::verifyProgram(const Program &P,
                                 std::vector<std::string> *Errors) {
  bool Ok = true;
  auto Fail = [&](std::string Msg) {
    Ok = false;
    if (Errors)
      Errors->push_back(std::move(Msg));
  };

  if (P.Blocks.empty()) {
    Fail("program has no blocks");
    return false;
  }
  if (P.Entry >= P.Blocks.size())
    Fail(formatString("entry block %u out of range", P.Entry));
  if (P.InitialMem.size() > P.MemWords)
    Fail("initial memory larger than memory size");

  for (size_t Id = 0; Id < P.Blocks.size(); ++Id) {
    const Block &B = P.Blocks[Id];
    for (size_t I = 0; I < B.Insts.size(); ++I) {
      const Inst &In = B.Insts[I];
      auto CheckReg = [&](uint8_t R, const char *Role) {
        if (R >= NumRegs)
          Fail(formatString("block %zu inst %zu: %s register %u out of "
                            "range",
                            Id, I, Role, R));
      };
      if (opcodeWritesRd(In.Op))
        CheckReg(In.Rd, "dest");
      if (opcodeReadsRa(In.Op))
        CheckReg(In.Ra, "ra");
      if (opcodeReadsRb(In.Op))
        CheckReg(In.Rb, "rb");
    }
    const Terminator &T = B.Term;
    auto CheckTarget = [&](BlockId Target, const char *Role) {
      if (Target >= P.Blocks.size())
        Fail(formatString("block %zu: %s target %u out of range", Id, Role,
                          Target));
    };
    switch (T.Kind) {
    case TermKind::Jump:
      CheckTarget(T.Taken, "jump");
      break;
    case TermKind::Branch:
      CheckTarget(T.Taken, "taken");
      CheckTarget(T.Fallthrough, "fallthrough");
      if (T.Ra >= NumRegs)
        Fail(formatString("block %zu: branch ra out of range", Id));
      if (!condUsesImm(T.Cond) && T.Rb >= NumRegs)
        Fail(formatString("block %zu: branch rb out of range", Id));
      break;
    case TermKind::Halt:
      break;
    }
  }
  return Ok;
}

static std::string instToString(const Inst &In) {
  std::string S = formatString("    %-8s", opcodeName(In.Op));
  if (opcodeWritesRd(In.Op))
    S += formatString(" r%u", In.Rd);
  if (opcodeReadsRa(In.Op))
    S += formatString(" r%u", In.Ra);
  if (opcodeReadsRb(In.Op))
    S += formatString(" r%u", In.Rb);
  if (opcodeUsesImm(In.Op))
    S += formatString(" #%lld", static_cast<long long>(In.Imm));
  return S;
}

std::string tpdbt::guest::disassemble(const Program &P) {
  std::string Out = formatString("program %s (entry b%u, %llu mem words)\n",
                                 P.Name.c_str(), P.Entry,
                                 static_cast<unsigned long long>(P.MemWords));
  for (size_t Id = 0; Id < P.Blocks.size(); ++Id) {
    const Block &B = P.Blocks[Id];
    Out += formatString("b%zu%s%s:\n", Id, B.Name.empty() ? "" : " ",
                        B.Name.c_str());
    for (const Inst &In : B.Insts) {
      Out += instToString(In);
      Out += '\n';
    }
    const Terminator &T = B.Term;
    switch (T.Kind) {
    case TermKind::Jump:
      Out += formatString("    jump     b%u\n", T.Taken);
      break;
    case TermKind::Branch:
      Out += formatString("    br.%-5s r%u", condKindName(T.Cond), T.Ra);
      if (condUsesImm(T.Cond))
        Out += formatString(" #%lld", static_cast<long long>(T.Imm));
      else
        Out += formatString(" r%u", T.Rb);
      Out += formatString(" -> b%u else b%u\n", T.Taken, T.Fallthrough);
      break;
    case TermKind::Halt:
      Out += "    halt\n";
      break;
    }
  }
  return Out;
}

std::string tpdbt::guest::printProgram(const Program &P) {
  std::ostringstream OS;
  OS << "tpdbt-program v1\n";
  OS << "name " << (P.Name.empty() ? "-" : P.Name) << "\n";
  OS << "entry " << P.Entry << "\n";
  OS << "memwords " << P.MemWords << "\n";
  OS << "blocks " << P.Blocks.size() << "\n";
  for (size_t Id = 0; Id < P.Blocks.size(); ++Id) {
    const Block &B = P.Blocks[Id];
    OS << "block " << Id << " " << (B.Name.empty() ? "-" : B.Name) << "\n";
    for (const Inst &In : B.Insts)
      OS << "i " << opcodeName(In.Op) << " " << unsigned(In.Rd) << " "
         << unsigned(In.Ra) << " " << unsigned(In.Rb) << " " << In.Imm
         << "\n";
    const Terminator &T = B.Term;
    switch (T.Kind) {
    case TermKind::Jump:
      OS << "t jump " << T.Taken << "\n";
      break;
    case TermKind::Branch:
      OS << "t branch " << condKindName(T.Cond) << " " << unsigned(T.Ra)
         << " " << unsigned(T.Rb) << " " << T.Imm << " " << T.Taken << " "
         << T.Fallthrough << "\n";
      break;
    case TermKind::Halt:
      OS << "t halt\n";
      break;
    }
  }
  OS << "memdata " << P.InitialMem.size() << "\n";
  for (size_t I = 0; I < P.InitialMem.size(); ++I) {
    OS << P.InitialMem[I];
    OS << ((I % 16 == 15 || I + 1 == P.InitialMem.size()) ? "\n" : " ");
  }
  return OS.str();
}

bool tpdbt::guest::parseProgram(const std::string &Text, Program &Out,
                                std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  std::istringstream IS(Text);
  std::string Tok;
  if (!(IS >> Tok) || Tok != "tpdbt-program")
    return Fail("missing tpdbt-program header");
  if (!(IS >> Tok) || Tok != "v1")
    return Fail("unsupported version");

  Program P;
  size_t NumBlocks = 0;
  if (!(IS >> Tok) || Tok != "name" || !(IS >> P.Name))
    return Fail("bad name line");
  if (P.Name == "-")
    P.Name.clear();
  if (!(IS >> Tok) || Tok != "entry" || !(IS >> P.Entry))
    return Fail("bad entry line");
  if (!(IS >> Tok) || Tok != "memwords" || !(IS >> P.MemWords))
    return Fail("bad memwords line");
  if (!(IS >> Tok) || Tok != "blocks" || !(IS >> NumBlocks))
    return Fail("bad blocks line");

  P.Blocks.resize(NumBlocks);
  for (size_t I = 0; I < NumBlocks; ++I) {
    size_t Id;
    std::string Name;
    if (!(IS >> Tok) || Tok != "block" || !(IS >> Id >> Name) ||
        Id != I)
      return Fail(formatString("bad block header for block %zu", I));
    Block &B = P.Blocks[I];
    if (Name != "-")
      B.Name = Name;
    // Instructions until a terminator line.
    bool SawTerm = false;
    while (!SawTerm) {
      if (!(IS >> Tok))
        return Fail(formatString("unexpected EOF in block %zu", I));
      if (Tok == "i") {
        std::string OpName;
        unsigned Rd, Ra, Rb;
        int64_t Imm;
        if (!(IS >> OpName >> Rd >> Ra >> Rb >> Imm))
          return Fail(formatString("bad instruction in block %zu", I));
        Inst In;
        if (!opcodeFromName(OpName, In.Op))
          return Fail("unknown opcode " + OpName);
        In.Rd = static_cast<uint8_t>(Rd);
        In.Ra = static_cast<uint8_t>(Ra);
        In.Rb = static_cast<uint8_t>(Rb);
        In.Imm = Imm;
        B.Insts.push_back(In);
      } else if (Tok == "t") {
        std::string Kind;
        if (!(IS >> Kind))
          return Fail("bad terminator");
        if (Kind == "jump") {
          BlockId Target;
          if (!(IS >> Target))
            return Fail("bad jump target");
          B.Term = Terminator::jump(Target);
        } else if (Kind == "halt") {
          B.Term = Terminator::halt();
        } else if (Kind == "branch") {
          std::string CondName;
          unsigned Ra, Rb;
          int64_t Imm;
          BlockId Taken, Fallthrough;
          if (!(IS >> CondName >> Ra >> Rb >> Imm >> Taken >> Fallthrough))
            return Fail("bad branch terminator");
          CondKind CK;
          if (!condKindFromName(CondName, CK))
            return Fail("unknown condition " + CondName);
          Terminator T;
          T.Kind = TermKind::Branch;
          T.Cond = CK;
          T.Ra = static_cast<uint8_t>(Ra);
          T.Rb = static_cast<uint8_t>(Rb);
          T.Imm = Imm;
          T.Taken = Taken;
          T.Fallthrough = Fallthrough;
          B.Term = T;
        } else {
          return Fail("unknown terminator kind " + Kind);
        }
        SawTerm = true;
      } else {
        return Fail("unexpected token " + Tok);
      }
    }
  }
  size_t MemCount;
  if (!(IS >> Tok) || Tok != "memdata" || !(IS >> MemCount))
    return Fail("bad memdata header");
  P.InitialMem.resize(MemCount);
  for (size_t I = 0; I < MemCount; ++I)
    if (!(IS >> P.InitialMem[I]))
      return Fail("truncated memdata");

  Out = std::move(P);
  return true;
}
