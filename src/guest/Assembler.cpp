//===- guest/Assembler.cpp - Guest ISA text assembler ----------------------===//

#include "guest/Assembler.h"

#include "guest/ProgramBuilder.h"
#include "support/Format.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

using namespace tpdbt;
using namespace tpdbt::guest;

namespace {

/// A parsed operand: register, immediate, or label reference.
struct Operand {
  enum class Kind { Reg, Imm, Label } K;
  uint8_t Reg = 0;
  int64_t Imm = 0;
  std::string Label;
};

/// One pending instruction or terminator, with unresolved label targets.
struct Statement {
  std::string Mnemonic;
  std::vector<Operand> Operands;
  int Line = 0;
};

struct PendingBlock {
  std::string Label;
  std::vector<Statement> Statements;
  int Line = 0;
};

class Assembler {
public:
  bool run(const std::string &Source, Program &Out, std::string *Error);

private:
  bool fail(int Line, const std::string &Msg) {
    if (Err)
      *Err = formatString("line %d: %s", Line, Msg.c_str());
    return false;
  }

  bool parseLine(const std::string &Line, int LineNo);
  bool parseOperand(const std::string &Tok, int LineNo, Operand &Out);
  bool emitStatement(ProgramBuilder &PB, const Statement &S,
                     const std::map<std::string, BlockId> &Labels,
                     BlockId Fallthrough, bool &Terminated);

  std::vector<PendingBlock> Blocks;
  std::string ProgramName = "asm";
  uint64_t MemWords = 0;
  std::vector<int64_t> InitialMem;
  std::string *Err = nullptr;
};

/// Splits a statement into mnemonic + comma/space separated operands.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Toks;
  std::string Cur;
  for (char C : Line) {
    if (std::isspace(static_cast<unsigned char>(C)) || C == ',') {
      if (!Cur.empty()) {
        Toks.push_back(Cur);
        Cur.clear();
      }
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Toks.push_back(Cur);
  return Toks;
}

std::optional<int64_t> parseInt(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  size_t Pos = 0;
  try {
    int64_t V = std::stoll(S, &Pos, 0);
    if (Pos != S.size())
      return std::nullopt;
    return V;
  } catch (...) {
    return std::nullopt;
  }
}

/// Non-terminator mnemonics -> opcode. Register/immediate operand shapes
/// follow opcodeReadsRa/Rb/UsesImm.
const std::map<std::string, Opcode> &opcodeTable() {
  static const std::map<std::string, Opcode> Table = {
      {"add", Opcode::Add},       {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},       {"divs", Opcode::Divs},
      {"rems", Opcode::Rems},     {"and", Opcode::And},
      {"or", Opcode::Or},         {"xor", Opcode::Xor},
      {"shl", Opcode::Shl},       {"shr", Opcode::Shr},
      {"sar", Opcode::Sar},       {"addi", Opcode::AddI},
      {"muli", Opcode::MulI},     {"andi", Opcode::AndI},
      {"ori", Opcode::OrI},       {"xori", Opcode::XorI},
      {"shli", Opcode::ShlI},     {"shri", Opcode::ShrI},
      {"cmpeq", Opcode::CmpEq},   {"cmplt", Opcode::CmpLt},
      {"cmpltu", Opcode::CmpLtU}, {"cmpeqi", Opcode::CmpEqI},
      {"cmplti", Opcode::CmpLtI}, {"cmpltui", Opcode::CmpLtUI},
      {"movi", Opcode::MovI},     {"mov", Opcode::Mov},
      {"load", Opcode::Load},     {"store", Opcode::Store},
      {"fadd", Opcode::FAdd},     {"fsub", Opcode::FSub},
      {"fmul", Opcode::FMul},     {"fdiv", Opcode::FDiv},
      {"fconst", Opcode::FConst}, {"fcmplt", Opcode::FCmpLt},
      {"itof", Opcode::IToF},     {"ftoi", Opcode::FToI},
      {"nop", Opcode::Nop}};
  return Table;
}

/// Branch mnemonics -> condition kind.
const std::map<std::string, CondKind> &branchTable() {
  static const std::map<std::string, CondKind> Table = {
      {"beq", CondKind::Eq},   {"bne", CondKind::Ne},
      {"blt", CondKind::Lt},   {"bge", CondKind::Ge},
      {"bltu", CondKind::LtU}, {"bgeu", CondKind::GeU},
      {"beqi", CondKind::EqI}, {"bnei", CondKind::NeI},
      {"blti", CondKind::LtI}, {"bgei", CondKind::GeI}};
  return Table;
}

bool Assembler::parseOperand(const std::string &Tok, int LineNo,
                             Operand &Out) {
  if (Tok.size() >= 2 && (Tok[0] == 'r' || Tok[0] == 'R')) {
    if (auto N = parseInt(Tok.substr(1)); N && *N >= 0 && *N < NumRegs) {
      Out.K = Operand::Kind::Reg;
      Out.Reg = static_cast<uint8_t>(*N);
      return true;
    }
  }
  if (auto V = parseInt(Tok)) {
    Out.K = Operand::Kind::Imm;
    Out.Imm = *V;
    return true;
  }
  // Anything identifier-shaped is a label reference.
  if (!Tok.empty() &&
      (std::isalpha(static_cast<unsigned char>(Tok[0])) || Tok[0] == '_' ||
       Tok[0] == '.')) {
    Out.K = Operand::Kind::Label;
    Out.Label = Tok;
    return true;
  }
  return fail(LineNo, "cannot parse operand '" + Tok + "'");
}

bool Assembler::parseLine(const std::string &Raw, int LineNo) {
  // Strip comments.
  std::string Line = Raw;
  for (char C : {';', '#'}) {
    size_t Pos = Line.find(C);
    if (Pos != std::string::npos)
      Line.resize(Pos);
  }
  std::vector<std::string> Toks = tokenize(Line);
  if (Toks.empty())
    return true;

  // Directives.
  if (Toks[0] == ".program") {
    if (Toks.size() != 2)
      return fail(LineNo, ".program takes one name");
    ProgramName = Toks[1];
    return true;
  }
  if (Toks[0] == ".memwords") {
    if (Toks.size() != 2)
      return fail(LineNo, ".memwords takes one value");
    auto V = parseInt(Toks[1]);
    if (!V || *V < 0)
      return fail(LineNo, "bad .memwords value");
    MemWords = static_cast<uint64_t>(*V);
    return true;
  }
  if (Toks[0] == ".mem") {
    for (size_t I = 1; I < Toks.size(); ++I) {
      auto V = parseInt(Toks[I]);
      if (!V)
        return fail(LineNo, "bad .mem value '" + Toks[I] + "'");
      InitialMem.push_back(*V);
    }
    return true;
  }
  if (Toks[0][0] == '.')
    return fail(LineNo, "unknown directive " + Toks[0]);

  // Label definition.
  if (Toks[0].back() == ':') {
    std::string Label = Toks[0].substr(0, Toks[0].size() - 1);
    if (Label.empty())
      return fail(LineNo, "empty label");
    Blocks.push_back(PendingBlock{Label, {}, LineNo});
    if (Toks.size() > 1)
      return fail(LineNo, "label must be alone on its line");
    return true;
  }

  // Instruction.
  if (Blocks.empty())
    return fail(LineNo, "instruction before the first label");
  Statement S;
  S.Mnemonic = Toks[0];
  S.Line = LineNo;
  for (size_t I = 1; I < Toks.size(); ++I) {
    Operand Op;
    if (!parseOperand(Toks[I], LineNo, Op))
      return false;
    S.Operands.push_back(Op);
  }
  Blocks.back().Statements.push_back(std::move(S));
  return true;
}

bool Assembler::emitStatement(ProgramBuilder &PB, const Statement &S,
                              const std::map<std::string, BlockId> &Labels,
                              BlockId Fallthrough, bool &Terminated) {
  auto Resolve = [&](const Operand &Op, BlockId &Out) {
    if (Op.K != Operand::Kind::Label)
      return fail(S.Line, "expected a label operand");
    auto It = Labels.find(Op.Label);
    if (It == Labels.end())
      return fail(S.Line, "unknown label '" + Op.Label + "'");
    Out = It->second;
    return true;
  };
  auto Reg = [&](size_t I, uint8_t &Out) {
    if (I >= S.Operands.size() || S.Operands[I].K != Operand::Kind::Reg)
      return fail(S.Line, formatString("operand %zu of %s must be a "
                                       "register",
                                       I + 1, S.Mnemonic.c_str()));
    Out = S.Operands[I].Reg;
    return true;
  };
  auto Imm = [&](size_t I, int64_t &Out) {
    if (I >= S.Operands.size() || S.Operands[I].K != Operand::Kind::Imm)
      return fail(S.Line, formatString("operand %zu of %s must be an "
                                       "immediate",
                                       I + 1, S.Mnemonic.c_str()));
    Out = S.Operands[I].Imm;
    return true;
  };

  // Terminators.
  if (S.Mnemonic == "halt") {
    if (!S.Operands.empty())
      return fail(S.Line, "halt takes no operands");
    PB.halt();
    Terminated = true;
    return true;
  }
  if (S.Mnemonic == "jmp") {
    BlockId Target;
    if (S.Operands.size() != 1 || !Resolve(S.Operands[0], Target))
      return S.Operands.size() == 1 ? false
                                    : fail(S.Line, "jmp takes one label");
    PB.jump(Target);
    Terminated = true;
    return true;
  }
  if (auto It = branchTable().find(S.Mnemonic); It != branchTable().end()) {
    CondKind CK = It->second;
    uint8_t Ra;
    BlockId Taken, Fall;
    if (condUsesImm(CK)) {
      int64_t ImmV;
      if (S.Operands.size() != 4 || !Reg(0, Ra) || !Imm(1, ImmV) ||
          !Resolve(S.Operands[2], Taken) || !Resolve(S.Operands[3], Fall))
        return false;
      PB.branchImm(CK, Ra, ImmV, Taken, Fall);
    } else {
      uint8_t Rb;
      if (S.Operands.size() != 4 || !Reg(0, Ra) || !Reg(1, Rb) ||
          !Resolve(S.Operands[2], Taken) || !Resolve(S.Operands[3], Fall))
        return false;
      PB.branch(CK, Ra, Rb, Taken, Fall);
    }
    Terminated = true;
    return true;
  }

  // Plain instructions.
  auto It = opcodeTable().find(S.Mnemonic);
  if (It == opcodeTable().end())
    return fail(S.Line, "unknown mnemonic '" + S.Mnemonic + "'");
  Opcode Op = It->second;
  Inst In;
  In.Op = Op;
  size_t Idx = 0;
  if (opcodeWritesRd(Op) && !Reg(Idx++, In.Rd))
    return false;
  if (Op == Opcode::Store) {
    // store rb, ra, imm  (value, base, offset)
    if (!Reg(Idx++, In.Rb) || !Reg(Idx++, In.Ra) || !Imm(Idx++, In.Imm))
      return false;
  } else {
    if (opcodeReadsRa(Op) && !Reg(Idx++, In.Ra))
      return false;
    if (opcodeReadsRb(Op) && !Reg(Idx++, In.Rb))
      return false;
    if (opcodeUsesImm(Op) && !Imm(Idx++, In.Imm))
      return false;
  }
  if (Idx != S.Operands.size())
    return fail(S.Line, formatString("%s expects %zu operands, got %zu",
                                     S.Mnemonic.c_str(), Idx,
                                     S.Operands.size()));
  PB.emit(In);
  return true;
}

bool Assembler::run(const std::string &Source, Program &Out,
                    std::string *Error) {
  Err = Error;
  int LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    ++LineNo;
    if (!parseLine(Source.substr(Pos, End - Pos), LineNo))
      return false;
    Pos = End + 1;
  }
  if (Blocks.empty())
    return fail(LineNo, "no blocks defined");

  ProgramBuilder PB(ProgramName);
  std::map<std::string, BlockId> Labels;
  std::vector<BlockId> Ids;
  for (const PendingBlock &B : Blocks) {
    if (Labels.count(B.Label))
      return fail(B.Line, "duplicate label '" + B.Label + "'");
    BlockId Id = PB.createBlock(B.Label);
    Labels[B.Label] = Id;
    Ids.push_back(Id);
  }
  PB.setEntry(Ids[0]);

  for (size_t BI = 0; BI < Blocks.size(); ++BI) {
    PB.switchTo(Ids[BI]);
    bool Terminated = false;
    for (const Statement &S : Blocks[BI].Statements) {
      if (Terminated)
        return fail(S.Line, "instruction after block terminator");
      if (!emitStatement(PB, S, Labels, guest::InvalidBlock, Terminated))
        return false;
    }
    if (!Terminated) {
      // Implicit fallthrough to the next block.
      if (BI + 1 >= Blocks.size())
        return fail(Blocks[BI].Line,
                    "last block '" + Blocks[BI].Label +
                        "' has no terminator");
      PB.jump(Ids[BI + 1]);
    }
  }

  if (MemWords > 0)
    PB.setMemWords(MemWords);
  PB.setInitialMem(InitialMem);

  std::vector<std::string> Problems;
  // build() asserts on malformed programs; validate first for a clean
  // error path on bad register/target values that slipped through.
  Out = PB.build();
  if (!verifyProgram(Out, &Problems))
    return fail(0, "assembled program is malformed: " +
                       (Problems.empty() ? "?" : Problems[0]));
  return true;
}

} // namespace

bool tpdbt::guest::assembleProgram(const std::string &Source, Program &Out,
                                   std::string *Error) {
  Assembler A;
  return A.run(Source, Out, Error);
}
