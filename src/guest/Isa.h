//===- guest/Isa.h - Synthetic guest instruction set ------------*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic guest ISA executed by the tpdbt two-phase translator.
///
/// The paper's study runs IA-32 binaries under IA32EL; neither IA-32
/// decoding nor Itanium code generation affects the study, only the
/// *block-level* structure of programs (conditional branches, loops) and
/// the profiling semantics. This ISA is therefore a small, regular RISC-ish
/// register machine: 32 general registers holding 64-bit integers (FP ops
/// reinterpret the bits as IEEE double), a flat word-addressed memory, and
/// basic blocks terminated by exactly one control-transfer instruction.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_GUEST_ISA_H
#define TPDBT_GUEST_ISA_H

#include <cstdint>
#include <string>

namespace tpdbt {
namespace guest {

/// Number of general-purpose guest registers.
constexpr unsigned NumRegs = 32;

/// Identifies a basic block within a Program.
using BlockId = uint32_t;

/// Sentinel for "no block".
constexpr BlockId InvalidBlock = ~static_cast<BlockId>(0);

/// Non-terminator operations. Register operands are Rd (dest), Ra, Rb;
/// immediate forms use Imm instead of Rb.
enum class Opcode : uint8_t {
  // Integer ALU, register-register.
  Add,
  Sub,
  Mul,
  Divs, // signed divide; divide by zero yields 0 (guest-defined)
  Rems, // signed remainder; by zero yields 0
  And,
  Or,
  Xor,
  Shl, // shift count masked to 63
  Shr, // logical right shift, count masked
  Sar, // arithmetic right shift, count masked
  // Integer ALU, register-immediate (Imm is the second operand).
  AddI,
  MulI,
  AndI,
  OrI,
  XorI,
  ShlI,
  ShrI,
  // Comparisons producing 0/1 in Rd.
  CmpEq,
  CmpLt,  // signed
  CmpLtU, // unsigned
  CmpEqI,
  CmpLtI,
  CmpLtUI,
  // Data movement.
  MovI, // Rd = Imm
  Mov,  // Rd = Ra
  // Memory: word-granular, address = Ra + Imm (in words).
  Load,  // Rd = Mem[Ra + Imm]
  Store, // Mem[Ra + Imm] = Rb
  // Floating point (registers reinterpreted as IEEE double).
  FAdd,
  FSub,
  FMul,
  FDiv,
  FConst, // Rd = bit pattern of double(Imm) -- Imm carries raw bits
  FCmpLt, // Rd = (double)Ra < (double)Rb ? 1 : 0
  // Conversion.
  IToF, // Rd = bits of (double)(int64)Ra
  FToI, // Rd = (int64) trunc((double bits)Ra)
  Nop,
};

/// Returns a stable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// True for opcodes whose second operand is the immediate field.
bool opcodeUsesImm(Opcode Op);

/// True for opcodes that read Ra / Rb / write Rd.
bool opcodeReadsRa(Opcode Op);
bool opcodeReadsRb(Opcode Op);
bool opcodeWritesRd(Opcode Op);

/// A single non-terminator guest instruction.
struct Inst {
  Opcode Op = Opcode::Nop;
  uint8_t Rd = 0;
  uint8_t Ra = 0;
  uint8_t Rb = 0;
  int64_t Imm = 0;
};

/// Branch condition kinds for conditional terminators. The comparison is
/// Ra <cond> Rb (or Imm for the *I forms).
enum class CondKind : uint8_t {
  Eq,
  Ne,
  Lt,  // signed
  Ge,  // signed
  LtU, // unsigned
  GeU,
  EqI,
  NeI,
  LtI,
  GeI,
};

/// Returns a stable mnemonic for \p CK.
const char *condKindName(CondKind CK);

/// True for the immediate-comparand condition kinds.
bool condUsesImm(CondKind CK);

/// Terminator kinds; every block ends with exactly one terminator.
enum class TermKind : uint8_t {
  Jump,   ///< unconditional jump to Taken
  Branch, ///< conditional: Taken if cond holds, else Fallthrough
  Halt,   ///< program end
};

/// The control transfer that ends a block.
///
/// For Branch terminators the *taken* edge is the one whose count the
/// profiling phase accumulates (the paper's "taken" counter); the branch
/// probability of the block is taken/use.
struct Terminator {
  TermKind Kind = TermKind::Halt;
  CondKind Cond = CondKind::Eq;
  uint8_t Ra = 0;
  uint8_t Rb = 0;
  int64_t Imm = 0;
  BlockId Taken = InvalidBlock;
  BlockId Fallthrough = InvalidBlock;

  static Terminator jump(BlockId Target);
  static Terminator halt();
  static Terminator branch(CondKind Cond, uint8_t Ra, uint8_t Rb,
                           BlockId Taken, BlockId Fallthrough);
  static Terminator branchImm(CondKind Cond, uint8_t Ra, int64_t Imm,
                              BlockId Taken, BlockId Fallthrough);
};

} // namespace guest
} // namespace tpdbt

#endif // TPDBT_GUEST_ISA_H
