//===- guest/Program.h - Guest program container ----------------*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Program container: basic blocks of guest instructions plus initial
/// memory. Programs are immutable once built (see ProgramBuilder).
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_GUEST_PROGRAM_H
#define TPDBT_GUEST_PROGRAM_H

#include "guest/Isa.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tpdbt {
namespace guest {

/// A basic block: straight-line instructions plus one terminator.
struct Block {
  std::vector<Inst> Insts;
  Terminator Term;
  /// Optional label for diagnostics/disassembly.
  std::string Name;
};

/// An immutable guest program.
///
/// Memory is word (int64) addressed; \c MemWords words are zero-initialized
/// and then overlaid with \c InitialMem starting at word 0.
struct Program {
  std::string Name;
  std::vector<Block> Blocks;
  BlockId Entry = 0;
  uint64_t MemWords = 0;
  std::vector<int64_t> InitialMem;

  size_t numBlocks() const { return Blocks.size(); }

  const Block &block(BlockId Id) const { return Blocks[Id]; }

  /// Total static instruction count, terminators included.
  uint64_t staticInstCount() const;
};

/// Verifies structural invariants: entry in range, all branch targets in
/// range, conditional branches have both targets, register indices valid,
/// initial memory fits. Appends human-readable problems to \p Errors if
/// non-null. Returns true when the program is well-formed.
bool verifyProgram(const Program &P, std::vector<std::string> *Errors);

/// Renders the whole program as text (one instruction per line).
std::string disassemble(const Program &P);

/// Serializes a program to a line-based text format and parses it back.
/// The two functions round-trip: parseProgram(printProgram(P)) == P.
std::string printProgram(const Program &P);

/// Parses the format produced by printProgram. Returns false (and fills
/// \p Error if non-null) on malformed input.
bool parseProgram(const std::string &Text, Program &Out, std::string *Error);

} // namespace guest
} // namespace tpdbt

#endif // TPDBT_GUEST_PROGRAM_H
