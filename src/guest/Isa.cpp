//===- guest/Isa.cpp - Synthetic guest instruction set --------------------===//

#include "guest/Isa.h"

#include <cassert>

using namespace tpdbt;
using namespace tpdbt::guest;

const char *tpdbt::guest::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Divs:
    return "divs";
  case Opcode::Rems:
    return "rems";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Sar:
    return "sar";
  case Opcode::AddI:
    return "addi";
  case Opcode::MulI:
    return "muli";
  case Opcode::AndI:
    return "andi";
  case Opcode::OrI:
    return "ori";
  case Opcode::XorI:
    return "xori";
  case Opcode::ShlI:
    return "shli";
  case Opcode::ShrI:
    return "shri";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLtU:
    return "cmpltu";
  case Opcode::CmpEqI:
    return "cmpeqi";
  case Opcode::CmpLtI:
    return "cmplti";
  case Opcode::CmpLtUI:
    return "cmpltui";
  case Opcode::MovI:
    return "movi";
  case Opcode::Mov:
    return "mov";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FConst:
    return "fconst";
  case Opcode::FCmpLt:
    return "fcmplt";
  case Opcode::IToF:
    return "itof";
  case Opcode::FToI:
    return "ftoi";
  case Opcode::Nop:
    return "nop";
  }
  assert(false && "unknown opcode");
  return "?";
}

bool tpdbt::guest::opcodeUsesImm(Opcode Op) {
  switch (Op) {
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::OrI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrI:
  case Opcode::CmpEqI:
  case Opcode::CmpLtI:
  case Opcode::CmpLtUI:
  case Opcode::MovI:
  case Opcode::FConst:
  case Opcode::Load:
  case Opcode::Store:
    return true;
  default:
    return false;
  }
}

bool tpdbt::guest::opcodeReadsRa(Opcode Op) {
  switch (Op) {
  case Opcode::MovI:
  case Opcode::FConst:
  case Opcode::Nop:
    return false;
  default:
    return true;
  }
}

bool tpdbt::guest::opcodeReadsRb(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Divs:
  case Opcode::Rems:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sar:
  case Opcode::CmpEq:
  case Opcode::CmpLt:
  case Opcode::CmpLtU:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FCmpLt:
  case Opcode::Store:
    return true;
  default:
    return false;
  }
}

bool tpdbt::guest::opcodeWritesRd(Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Nop:
    return false;
  default:
    return true;
  }
}

const char *tpdbt::guest::condKindName(CondKind CK) {
  switch (CK) {
  case CondKind::Eq:
    return "eq";
  case CondKind::Ne:
    return "ne";
  case CondKind::Lt:
    return "lt";
  case CondKind::Ge:
    return "ge";
  case CondKind::LtU:
    return "ltu";
  case CondKind::GeU:
    return "geu";
  case CondKind::EqI:
    return "eqi";
  case CondKind::NeI:
    return "nei";
  case CondKind::LtI:
    return "lti";
  case CondKind::GeI:
    return "gei";
  }
  assert(false && "unknown condition kind");
  return "?";
}

bool tpdbt::guest::condUsesImm(CondKind CK) {
  switch (CK) {
  case CondKind::EqI:
  case CondKind::NeI:
  case CondKind::LtI:
  case CondKind::GeI:
    return true;
  default:
    return false;
  }
}

Terminator Terminator::jump(BlockId Target) {
  Terminator T;
  T.Kind = TermKind::Jump;
  T.Taken = Target;
  return T;
}

Terminator Terminator::halt() {
  Terminator T;
  T.Kind = TermKind::Halt;
  return T;
}

Terminator Terminator::branch(CondKind Cond, uint8_t Ra, uint8_t Rb,
                              BlockId Taken, BlockId Fallthrough) {
  assert(!condUsesImm(Cond) && "use branchImm for immediate conditions");
  Terminator T;
  T.Kind = TermKind::Branch;
  T.Cond = Cond;
  T.Ra = Ra;
  T.Rb = Rb;
  T.Taken = Taken;
  T.Fallthrough = Fallthrough;
  return T;
}

Terminator Terminator::branchImm(CondKind Cond, uint8_t Ra, int64_t Imm,
                                 BlockId Taken, BlockId Fallthrough) {
  assert(condUsesImm(Cond) && "use branch for register conditions");
  Terminator T;
  T.Kind = TermKind::Branch;
  T.Cond = Cond;
  T.Ra = Ra;
  T.Imm = Imm;
  T.Taken = Taken;
  T.Fallthrough = Fallthrough;
  return T;
}
