//===- guest/ProgramBuilder.cpp - Guest program construction ---------------===//

#include "guest/ProgramBuilder.h"

using namespace tpdbt;
using namespace tpdbt::guest;

BlockId ProgramBuilder::createBlock(std::string Name) {
  Block B;
  B.Name = std::move(Name);
  B.Term = Terminator::halt();
  P.Blocks.push_back(std::move(B));
  Terminated.push_back(false);
  return static_cast<BlockId>(P.Blocks.size() - 1);
}

void ProgramBuilder::switchTo(BlockId Id) {
  assert(Id < P.Blocks.size() && "switchTo out of range");
  Cur = Id;
}

Block &ProgramBuilder::cur() {
  assert(Cur != InvalidBlock && "no current block; call switchTo first");
  assert(!Terminated[Cur] && "emitting into a terminated block");
  return P.Blocks[Cur];
}

void ProgramBuilder::setInitialMem(std::vector<int64_t> Mem) {
  P.InitialMem = std::move(Mem);
  if (P.MemWords < P.InitialMem.size())
    P.MemWords = P.InitialMem.size();
}

uint64_t ProgramBuilder::appendMemWord(int64_t Value) {
  P.InitialMem.push_back(Value);
  if (P.MemWords < P.InitialMem.size())
    P.MemWords = P.InitialMem.size();
  return P.InitialMem.size() - 1;
}

void ProgramBuilder::emit(const Inst &In) { cur().Insts.push_back(In); }

void ProgramBuilder::movI(uint8_t Rd, int64_t Imm) {
  emit({Opcode::MovI, Rd, 0, 0, Imm});
}
void ProgramBuilder::mov(uint8_t Rd, uint8_t Ra) {
  emit({Opcode::Mov, Rd, Ra, 0, 0});
}
void ProgramBuilder::add(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  emit({Opcode::Add, Rd, Ra, Rb, 0});
}
void ProgramBuilder::sub(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  emit({Opcode::Sub, Rd, Ra, Rb, 0});
}
void ProgramBuilder::mul(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  emit({Opcode::Mul, Rd, Ra, Rb, 0});
}
void ProgramBuilder::addI(uint8_t Rd, uint8_t Ra, int64_t Imm) {
  emit({Opcode::AddI, Rd, Ra, 0, Imm});
}
void ProgramBuilder::mulI(uint8_t Rd, uint8_t Ra, int64_t Imm) {
  emit({Opcode::MulI, Rd, Ra, 0, Imm});
}
void ProgramBuilder::andI(uint8_t Rd, uint8_t Ra, int64_t Imm) {
  emit({Opcode::AndI, Rd, Ra, 0, Imm});
}
void ProgramBuilder::orI(uint8_t Rd, uint8_t Ra, int64_t Imm) {
  emit({Opcode::OrI, Rd, Ra, 0, Imm});
}
void ProgramBuilder::xorI(uint8_t Rd, uint8_t Ra, int64_t Imm) {
  emit({Opcode::XorI, Rd, Ra, 0, Imm});
}
void ProgramBuilder::shlI(uint8_t Rd, uint8_t Ra, int64_t Imm) {
  emit({Opcode::ShlI, Rd, Ra, 0, Imm});
}
void ProgramBuilder::shrI(uint8_t Rd, uint8_t Ra, int64_t Imm) {
  emit({Opcode::ShrI, Rd, Ra, 0, Imm});
}
void ProgramBuilder::xorR(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  emit({Opcode::Xor, Rd, Ra, Rb, 0});
}
void ProgramBuilder::cmpLtU(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  emit({Opcode::CmpLtU, Rd, Ra, Rb, 0});
}
void ProgramBuilder::load(uint8_t Rd, uint8_t Ra, int64_t Imm) {
  emit({Opcode::Load, Rd, Ra, 0, Imm});
}
void ProgramBuilder::store(uint8_t Rb, uint8_t Ra, int64_t Imm) {
  emit({Opcode::Store, 0, Ra, Rb, Imm});
}
void ProgramBuilder::fadd(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  emit({Opcode::FAdd, Rd, Ra, Rb, 0});
}
void ProgramBuilder::fmul(uint8_t Rd, uint8_t Ra, uint8_t Rb) {
  emit({Opcode::FMul, Rd, Ra, Rb, 0});
}
void ProgramBuilder::nop() { emit({Opcode::Nop, 0, 0, 0, 0}); }

void ProgramBuilder::jump(BlockId Target) {
  cur().Term = Terminator::jump(Target);
  Terminated[Cur] = true;
}

void ProgramBuilder::halt() {
  cur().Term = Terminator::halt();
  Terminated[Cur] = true;
}

void ProgramBuilder::branch(CondKind Cond, uint8_t Ra, uint8_t Rb,
                            BlockId Taken, BlockId Fallthrough) {
  cur().Term = Terminator::branch(Cond, Ra, Rb, Taken, Fallthrough);
  Terminated[Cur] = true;
}

void ProgramBuilder::branchImm(CondKind Cond, uint8_t Ra, int64_t Imm,
                               BlockId Taken, BlockId Fallthrough) {
  cur().Term = Terminator::branchImm(Cond, Ra, Imm, Taken, Fallthrough);
  Terminated[Cur] = true;
}

Program ProgramBuilder::build() {
  for (size_t I = 0; I < Terminated.size(); ++I)
    assert(Terminated[I] && "block left unterminated");
  std::vector<std::string> Errors;
  [[maybe_unused]] bool Ok = verifyProgram(P, &Errors);
  assert(Ok && "builder produced malformed program");
  return std::move(P);
}
