//===- bench/fig15_lp_mismatch.cpp - Figure 15 reproduction -----*- C++ -*-===//
//
// Figure 15: loop-back probability (trip-count class) mismatch rates,
// suite averages.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main() {
  return bench::runFigureBench(
      "fig15_lp_mismatch", [](core::ExperimentContext &C) {
        return core::figureAverages(
            C, core::MetricKind::LpMismatch,
            "Figure 15: loop-back probability mismatch rates (averages)");
      });
}
