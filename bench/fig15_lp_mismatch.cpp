//===- bench/fig15_lp_mismatch.cpp - Figure 15 reproduction -----*- C++ -*-===//
//
// Figure 15: loop-back probability (trip-count class) mismatch rates,
// suite averages.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig15_lp_mismatch");
}
