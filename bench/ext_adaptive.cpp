//===- bench/ext_adaptive.cpp - Adaptive re-optimization extension ---------===//
//
// The paper's Section 5 future work, evaluated: "longer profiling periods
// or selective continuous profiling (especially for CP and LP) is
// beneficial... Effectively monitoring region side exits to trigger
// retranslation and adaptation looks promising."
//
// This bench compares the plain two-phase translator against the adaptive
// variant (side-exit + trip-class monitoring with re-profiling) at
// T = 2000 on the phase-heavy benchmarks the paper names (mcf, gzip,
// wupwise) and on stable controls (eon, swim): accuracy of the *final*
// prediction, modeled cycles, and retranslation counts.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "analysis/Metrics.h"
#include "core/Runner.h"
#include "support/Format.h"
#include "support/Table.h"
#include "vm/Interpreter.h"
#include "workloads/BenchSpec.h"
#include "workloads/Generator.h"

#include <cstdio>
#include <cstdlib>

using namespace tpdbt;

namespace {

struct RunResult {
  double SdBp = 0;
  double LpMismatch = 0;
  uint64_t Cycles = 0;
  uint64_t SideExits = 0;
  uint64_t Retranslations = 0;
};

RunResult runOne(const workloads::GeneratedBenchmark &B,
                 const profile::ProfileSnapshot &Avep, bool Adaptive) {
  cfg::Cfg G(B.Ref);
  dbt::DbtOptions Opts;
  Opts.Threshold = 2000;
  Opts.Adaptive.Enabled = Adaptive;
  dbt::TranslationPolicy Policy(B.Ref, G, Opts);

  std::vector<profile::BlockCounters> Shared(B.Ref.numBlocks());
  vm::Interpreter Interp(B.Ref);
  vm::Machine M;
  M.reset(B.Ref);
  guest::BlockId Cur = B.Ref.Entry;
  uint64_t Blocks = 0, Insts = 0;
  while (true) {
    vm::BlockResult R = Interp.executeBlock(Cur, M);
    ++Blocks;
    Insts += R.InstsExecuted;
    auto &C = Shared[Cur];
    ++C.Use;
    if (R.IsCondBranch && R.Taken)
      ++C.Taken;
    Policy.onBlockEvent(Cur, R, Shared);
    if (R.Reason != vm::StopReason::Running)
      break;
    Cur = R.Next;
  }
  profile::ProfileSnapshot Snap = Policy.finish(Shared, Blocks, Insts);

  RunResult Out;
  Out.SdBp = analysis::sdBranchProb(Snap, Avep, G);
  Out.LpMismatch = analysis::lpMismatchRate(Snap, Avep, G);
  Out.Cycles = Snap.Cycles;
  Out.SideExits = Policy.cost().SideExits;
  Out.Retranslations = Policy.retranslations();
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  if (int Code = bench::handleBenchArgs(argc, argv, "ext_adaptive",
                                        "Extension: adaptive re-optimization vs. the plain two-phase translator at T=2000");
      Code >= 0)
    return Code;

  double Scale = 0.5;
  if (const char *S = std::getenv("TPDBT_SCALE")) {
    double V = std::atof(S);
    if (V > 0)
      Scale *= V;
  }

  Table T("Extension: adaptive re-optimization vs. plain two-phase "
          "(T=2k, scale " + formatDouble(Scale, 2) + ")");
  T.setHeader({"benchmark", "Sd.BP", "Sd.BP(adapt)", "LPmis",
               "LPmis(adapt)", "speedup", "retrans", "side_exit_ratio"});

  for (const char *Name : {"mcf", "gzip", "wupwise", "parser", "eon",
                           "swim"}) {
    auto B = workloads::generateBenchmark(
        workloads::scaledSpec(*workloads::findSpec(Name), Scale));
    // AVEP for the metrics.
    core::SweepResult Avg = core::runSweep(B.Ref, {}, dbt::DbtOptions(),
                                           ~0ull);
    RunResult Plain = runOne(B, Avg.Average, /*Adaptive=*/false);
    RunResult Adapt = runOne(B, Avg.Average, /*Adaptive=*/true);

    T.addRow();
    T.addCell(std::string(Name));
    T.addCell(Plain.SdBp, 3);
    T.addCell(Adapt.SdBp, 3);
    T.addCell(Plain.LpMismatch, 3);
    T.addCell(Adapt.LpMismatch, 3);
    T.addCell(static_cast<double>(Plain.Cycles) /
                  static_cast<double>(Adapt.Cycles),
              3);
    T.addCell(Adapt.Retranslations);
    T.addCell(Plain.SideExits
                  ? static_cast<double>(Adapt.SideExits) /
                        static_cast<double>(Plain.SideExits)
                  : 1.0,
              3);
  }
  std::printf("%s", T.toText().c_str());
  std::printf("\nPhase-heavy benchmarks (mcf, gzip, wupwise) should show "
              "retranslations, better final accuracy and fewer side "
              "exits; stable ones (eon, swim) should be untouched.\n");
  return 0;
}
