//===- bench/ablation_duplication.cpp - Tail-duplication ablation ----------===//
//
// DESIGN.md Section 6: turning block duplication and diamond absorption
// off. Duplication is what makes NAVEP normalization necessary
// (Section 3.1); diamonds are what give balanced branches side-exit-free
// regions.
//
//===----------------------------------------------------------------------===//

#include "AblationCommon.h"
#include "FigureBenchMain.h"

#include "support/Statistics.h"

#include "analysis/Navep.h"

using namespace tpdbt;
using namespace tpdbt::bench;

namespace {

/// Counts duplicated blocks across the subset at T = 2000.
uint64_t countDuplicated(const dbt::DbtOptions &Opts) {
  uint64_t Total = 0;
  for (const std::string &Name : ablationBenchmarks()) {
    const AblationWorkload &W = ablationWorkload(Name);
    core::SweepResult Sweep =
        core::replaySweep(*W.Trace, W.Bench.Ref, {2000}, Opts);
    analysis::Navep N =
        analysis::buildNavep(Sweep.PerThreshold[0], Sweep.Average, *W.Graph);
    Total += N.NumDuplicated;
  }
  return Total;
}

} // namespace

int main(int argc, char **argv) {
  if (int Code = bench::handleBenchArgs(argc, argv, "ablation_duplication",
                                        "Ablation: tail duplication on/off at T=2000");
      Code >= 0)
    return Code;

  Table T("Ablation: tail duplication / diamond absorption (threshold 2k)");
  T.setHeader({"config", "Sd.BP", "Sd.CP", "Sd.LP", "regions",
               "duplicated_blocks", "speedup_vs_full"});

  dbt::DbtOptions Full;
  std::vector<uint64_t> BaseCycles;
  runAblation(Full, 2000, &BaseCycles);

  struct Config {
    const char *Name;
    bool Duplication;
    bool Diamonds;
  };
  for (const Config &C : {Config{"full", true, true},
                          Config{"no_diamonds", true, false},
                          Config{"no_duplication", false, true},
                          Config{"neither", false, false}}) {
    dbt::DbtOptions Opts;
    Opts.Formation.AllowDuplication = C.Duplication;
    Opts.Formation.EnableDiamonds = C.Diamonds;
    std::vector<uint64_t> Cycles;
    AblationResult R = runAblation(Opts, 2000, &Cycles);
    std::vector<double> Speedups;
    for (size_t I = 0; I < Cycles.size(); ++I)
      Speedups.push_back(static_cast<double>(BaseCycles[I]) /
                         static_cast<double>(Cycles[I]));
    T.addRow();
    T.addCell(std::string(C.Name));
    T.addCell(R.SdBp, 3);
    T.addCell(R.SdCp, 3);
    T.addCell(R.SdLp, 3);
    T.addCell(R.Regions);
    T.addCell(countDuplicated(Opts));
    T.addCell(tpdbt::geomean(Speedups), 3);
  }
  std::printf("%s", T.toText().c_str());
  std::printf("\n%s\n", ablationStatsLine().c_str());
  return 0;
}
