//===- bench/fig09_sd_bp_int.cpp - Figure 9 reproduction --------*- C++ -*-===//
//
// Figure 9: Sd.BP(T) per SPEC2000 INT benchmark.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "workloads/BenchSpec.h"

using namespace tpdbt;

int main() {
  return bench::runFigureBench(
      "fig09_sd_bp_int", [](core::ExperimentContext &C) {
        return core::figurePerBench(
            C, core::MetricKind::SdBp, workloads::intBenchmarkNames(),
            "Figure 9: Sd.BP(T) per INT benchmark");
      });
}
