//===- bench/fig09_sd_bp_int.cpp - Figure 9 reproduction --------*- C++ -*-===//
//
// Figure 9: Sd.BP(T) per SPEC2000 INT benchmark.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "workloads/BenchSpec.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig09_sd_bp_int");
}
