//===- bench/micro_sample.cpp - Sampled-replay microbenchmarks -*- C++ -*-===//
//
// google-benchmark timings of the approximate-replay path: a full exact
// warm sweep (replay every event at every threshold) against the
// stratified sampled estimation at a 25% segment budget off a TPDT v3
// container (the out-of-core path: directory + drawn segments only).
// The committed BENCH_sample.json rows back the ">= 5x at 25% budget"
// acceptance line in docs/BENCHMARKS.md.
//
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "core/Trace.h"
#include "core/TraceSegments.h"
#include "sample/SampledReplay.h"
#include "support/TextFile.h"
#include "workloads/BenchSpec.h"
#include "workloads/Generator.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

using namespace tpdbt;

namespace {

/// One scale-0.2 workload, recorded once and serialized as a segmented
/// v3 container: both benchmarks below sweep the paper's thresholds over
/// the identical execution.
struct SampleSetup {
  workloads::GeneratedBenchmark B;
  core::BlockTrace Trace;
  std::string Path;

  SampleSetup() {
    B = workloads::generateBenchmark(
        workloads::scaledSpec(*workloads::findSpec("gzip"), 0.2));
    Trace = core::BlockTrace::record(B.Ref);
    Path = (std::filesystem::temp_directory_path() /
            "tpdbt_micro_sample.trace")
               .string();
    writeTextFile(Path, Trace.serializeSegmented(core::DefaultSegmentEvents));
  }

  static SampleSetup &instance() {
    static SampleSetup S;
    return S;
  }
};

// The trace-warm exact sweep as core/Experiment pays it when the .prof
// layer is cold: load the container (decompressing every segment), build
// the analytic index, replay every threshold. The sampled path below
// answers the same sweep off the same file while leaving the unsampled
// payload compressed on disk — that skipped decompression is the win
// being measured.
void BM_ExactWarmSweep(benchmark::State &State) {
  SampleSetup &S = SampleSetup::instance();
  for (auto _ : State) {
    auto Bytes = readTextFile(S.Path);
    if (!Bytes) {
      State.SkipWithError("trace file unreadable");
      return;
    }
    core::BlockTrace Trace;
    std::string Error;
    if (!core::BlockTrace::parse(*Bytes, Trace, &Error)) {
      State.SkipWithError(Error.c_str());
      return;
    }
    Trace.index();
    core::SweepResult R = core::replaySweep(
        Trace, S.B.Ref, core::paperThresholds(), dbt::DbtOptions(), 1);
    benchmark::DoNotOptimize(R.PerThreshold.data());
  }
}
BENCHMARK(BM_ExactWarmSweep)->Unit(benchmark::kMillisecond);

void BM_SampledSweep(benchmark::State &State) {
  SampleSetup &S = SampleSetup::instance();
  sample::SampleConfig Cfg;
  Cfg.Kind = sample::SampleConfig::Mode::Stratified;
  Cfg.BudgetFrac = 0.25;
  double SampledFrac = 0.0;
  for (auto _ : State) {
    core::SegmentedTraceReader Reader;
    std::string Error;
    if (!core::SegmentedTraceReader::open(S.Path, Reader, &Error)) {
      State.SkipWithError(Error.c_str());
      return;
    }
    sample::DiskSegmentSource Src(Reader);
    sample::SampledSweep Out;
    if (!sample::sampledSweep(Src, S.B.Ref, core::paperThresholds(),
                              dbt::DbtOptions(), Cfg, Cfg.Seed, 1, Out,
                              &Error)) {
      State.SkipWithError(Error.c_str());
      return;
    }
    benchmark::DoNotOptimize(Out.PerThreshold.data());
    SampledFrac = Out.Stats.sampledFraction();
  }
  State.counters["sampled_frac"] = SampledFrac;
}
BENCHMARK(BM_SampledSweep)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
