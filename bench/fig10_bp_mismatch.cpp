//===- bench/fig10_bp_mismatch.cpp - Figure 10 reproduction -----*- C++ -*-===//
//
// Figure 10: range-based branch probability mismatch rates, INT and FP
// suite averages, with the training-input reference as the final row.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig10_bp_mismatch");
}
