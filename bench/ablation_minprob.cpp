//===- bench/ablation_minprob.cpp - Min-branch-probability ablation -------===//
//
// DESIGN.md Section 6: the "minimum branch probability" for trace growth
// ([5] uses 70%). Lower values grow longer but leakier regions (worse
// completion probability); higher values fragment regions.
//
//===----------------------------------------------------------------------===//

#include "AblationCommon.h"
#include "FigureBenchMain.h"

#include "support/Format.h"
#include "support/Statistics.h"

using namespace tpdbt;
using namespace tpdbt::bench;

int main(int argc, char **argv) {
  if (int Code = bench::handleBenchArgs(argc, argv, "ablation_minprob",
                                        "Ablation: region-formation minimum branch probability at T=2000");
      Code >= 0)
    return Code;

  Table T("Ablation: minimum branch probability (threshold 2k, subset "
          "average)");
  T.setHeader({"min_prob", "Sd.BP", "Sd.CP", "regions",
               "speedup_vs_0.7"});

  std::vector<uint64_t> BaseCycles;
  {
    dbt::DbtOptions Opts;
    Opts.Formation.MinBranchProb = 0.7;
    runAblation(Opts, 2000, &BaseCycles);
  }
  for (double MinProb : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    dbt::DbtOptions Opts;
    Opts.Formation.MinBranchProb = MinProb;
    std::vector<uint64_t> Cycles;
    AblationResult R = runAblation(Opts, 2000, &Cycles);
    std::vector<double> Speedups;
    for (size_t I = 0; I < Cycles.size(); ++I)
      Speedups.push_back(static_cast<double>(BaseCycles[I]) /
                         static_cast<double>(Cycles[I]));
    T.addRow();
    T.addCell(tpdbt::formatDouble(MinProb, 1));
    T.addCell(R.SdBp, 3);
    T.addCell(R.SdCp, 3);
    T.addCell(R.Regions);
    T.addCell(tpdbt::geomean(Speedups), 3);
  }
  std::printf("%s", T.toText().c_str());
  std::printf("\n%s\n", ablationStatsLine().c_str());
  return 0;
}
