//===- bench/FigureBenchMain.h - Shared figure-bench driver -----*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared main() body for the per-figure bench binaries: builds the
/// experiment context from the environment (TPDBT_SCALE, TPDBT_CACHE_DIR),
/// prints the figure's series as a table, and drops a CSV under
/// tpdbt_results/ for EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_BENCH_FIGUREBENCHMAIN_H
#define TPDBT_BENCH_FIGUREBENCHMAIN_H

#include "core/Experiment.h"
#include "workloads/BenchSpec.h"
#include "core/Figures.h"
#include "support/Table.h"
#include "support/TextFile.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace tpdbt {
namespace bench {

/// Runs one figure bench: \p Build receives a ready context and returns
/// the figure's table.
inline int
runFigureBench(const std::string &CsvName,
               const std::function<Table(core::ExperimentContext &)> &Build) {
  core::ExperimentConfig Config = core::ExperimentConfig::fromEnv();
  std::printf("tpdbt figure bench: scale=%.3f cache=%s jobs=%u\n",
              Config.Scale,
              Config.CacheDir.empty() ? "off" : Config.CacheDir.c_str(),
              Config.effectiveJobs());
  core::ExperimentContext Ctx(std::move(Config));

  // Pay the one-time suite interpretation across TPDBT_JOBS workers.
  std::vector<std::string> All = workloads::intBenchmarkNames();
  for (const std::string &N : workloads::fpBenchmarkNames())
    All.push_back(N);
  auto WarmStart = std::chrono::steady_clock::now();
  Ctx.warmUp(All);
  auto WarmEnd = std::chrono::steady_clock::now();
  double WarmSecs =
      std::chrono::duration<double>(WarmEnd - WarmStart).count();

  auto Start = std::chrono::steady_clock::now();
  Table T = Build(Ctx);
  auto End = std::chrono::steady_clock::now();
  double Secs = std::chrono::duration<double>(End - Start).count();

  std::printf("%s", T.toText().c_str());
  std::printf("tpdbt sweeps: %s, warm-up wall %.1fs\n",
              Ctx.statsSummary().c_str(), WarmSecs);
  std::printf("(computed in %.1fs)\n", Secs);

  if (ensureDirectory("tpdbt_results"))
    writeTextFile("tpdbt_results/" + CsvName + ".csv", T.toCsv());
  return 0;
}

} // namespace bench
} // namespace tpdbt

#endif // TPDBT_BENCH_FIGUREBENCHMAIN_H
