//===- bench/FigureBenchMain.h - Shared figure-bench driver -----*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared main() body for the per-figure bench binaries: builds the
/// experiment context from the environment (TPDBT_SCALE, TPDBT_CACHE_DIR),
/// prints the figure's series as a table, and drops a CSV under
/// tpdbt_results/ for EXPERIMENTS.md.
///
/// Figure binaries resolve their builder through core::figureRegistry(),
/// the same table the sweep daemon serves REQUEST(figure) from, so the
/// name printed by --list here is exactly the name tpdbt-sweep accepts.
/// handleBenchArgs() is the shared argv path for every bench binary
/// (figures, ablations, extensions): --help and --list are handled
/// uniformly and unknown arguments are an error instead of being
/// silently ignored.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_BENCH_FIGUREBENCHMAIN_H
#define TPDBT_BENCH_FIGUREBENCHMAIN_H

#include "core/Experiment.h"
#include "workloads/BenchSpec.h"
#include "core/Figures.h"
#include "support/Table.h"
#include "support/TextFile.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <string>

namespace tpdbt {
namespace bench {

/// Shared argv handling for the figure/ablation/extension binaries.
/// Returns -1 when the bench should proceed, otherwise the process exit
/// code (--help / --list exit 0; an unknown argument exits 2).
inline int handleBenchArgs(int argc, char **argv, const std::string &Name,
                           const std::string &Description) {
  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: %s [--help] [--list]\n\n  %s\n\n"
          "Environment knobs:\n"
          "  TPDBT_SCALE            workload scale factor (default 1.0)\n"
          "  TPDBT_CACHE_DIR        snapshot/trace cache directory "
          "(default ./tpdbt_cache; 'off' disables)\n"
          "  TPDBT_CACHE_MAX_BYTES  trace-store size bound, LRU-evicted "
          "(unset/0 = unbounded)\n"
          "  TPDBT_JOBS             worker threads for per-benchmark "
          "sweeps\n"
          "  TPDBT_SEGMENT_EVENTS   events per trace segment "
          "(0 = monolithic record path)\n"
          "  TPDBT_SAMPLE_MODE      'stratified' estimates the sweep from "
          "a segment sample with 95%% CIs (default off = exact)\n"
          "  TPDBT_SAMPLE_BUDGET    sampled fraction of segments in (0,1] "
          "(default 0.25)\n"
          "  TPDBT_SAMPLE_SEED      sampling seed (default 0x5eed)\n",
          Name.c_str(), Description.c_str());
      return 0;
    }
    if (Arg == "--list") {
      for (const core::FigureSpec &F : core::figureRegistry())
        std::printf("%-24s %s\n", F.Name, F.Description);
      return 0;
    }
    std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n",
                 Name.c_str(), Arg.c_str());
    return 2;
  }
  return -1;
}

/// Runs the registry figure named \p Name: prints its table, the sweep
/// stats banner, and drops tpdbt_results/<Name>.csv.
inline int runFigureBench(int argc, char **argv, const std::string &Name) {
  const core::FigureSpec *Spec = core::findFigure(Name);
  assert(Spec && "figure binary not present in core::figureRegistry()");
  if (int Code = handleBenchArgs(argc, argv, Name, Spec->Description);
      Code >= 0)
    return Code;

  core::ExperimentConfig Config = core::ExperimentConfig::fromEnv();
  std::printf("tpdbt figure bench: scale=%.3f cache=%s jobs=%u\n",
              Config.Scale,
              Config.CacheDir.empty() ? "off" : Config.CacheDir.c_str(),
              Config.effectiveJobs());
  core::ExperimentContext Ctx(std::move(Config));

  // Pay the one-time suite interpretation across TPDBT_JOBS workers.
  std::vector<std::string> All = workloads::intBenchmarkNames();
  for (const std::string &N : workloads::fpBenchmarkNames())
    All.push_back(N);
  auto WarmStart = std::chrono::steady_clock::now();
  Ctx.warmUp(All);
  auto WarmEnd = std::chrono::steady_clock::now();
  double WarmSecs =
      std::chrono::duration<double>(WarmEnd - WarmStart).count();

  auto Start = std::chrono::steady_clock::now();
  Table T = Spec->Build(Ctx);
  auto End = std::chrono::steady_clock::now();
  double Secs = std::chrono::duration<double>(End - Start).count();

  std::printf("%s", T.toText().c_str());
  std::printf("tpdbt sweeps: %s, warm-up wall %.1fs\n",
              Ctx.statsSummary().c_str(), WarmSecs);
  std::printf("(computed in %.1fs)\n", Secs);

  if (ensureDirectory("tpdbt_results"))
    writeTextFile("tpdbt_results/" + Name + ".csv", T.toCsv());
  return 0;
}

} // namespace bench
} // namespace tpdbt

#endif // TPDBT_BENCH_FIGUREBENCHMAIN_H
