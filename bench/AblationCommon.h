//===- bench/AblationCommon.h - Shared ablation-bench helpers ---*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the design-choice ablation benches (DESIGN.md Section 6):
/// run a benchmark subset under a modified DbtOptions and report accuracy
/// and modeled performance per configuration.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_BENCH_ABLATIONCOMMON_H
#define TPDBT_BENCH_ABLATIONCOMMON_H

#include "analysis/Metrics.h"
#include "core/Experiment.h"
#include "core/Runner.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "workloads/BenchSpec.h"
#include "workloads/Generator.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace tpdbt {
namespace bench {

/// The benchmark subset ablations run on (kept small for speed; three
/// branchy INT, one phase-heavy INT, two loopy FP).
inline std::vector<std::string> ablationBenchmarks() {
  return {"gzip", "perlbmk", "crafty", "mcf", "swim", "mgrid"};
}

/// Aggregate results of one configuration over the subset.
struct AblationResult {
  double SdBp = 0.0;
  double SdCp = 0.0;
  double SdLp = 0.0;
  double MeanSpeedupVsBase = 0.0; ///< cycles(base cfg) / cycles(this cfg)
  uint64_t Regions = 0;
  uint64_t SideExits = 0;
};

/// Runs the subset at threshold \p T under \p Opts (scaled by
/// TPDBT_SCALE * 0.25, no cache), one worker per benchmark up to
/// TPDBT_JOBS. Results are stored per benchmark index first and reduced
/// after the join, so they are byte-identical at any job count.
/// \p CyclesOut, when non-null, receives the per-benchmark cycles in
/// ablationBenchmarks() order for the speedup column.
inline AblationResult runAblation(const dbt::DbtOptions &Opts, uint64_t T,
                                  std::vector<uint64_t> *CyclesOut) {
  double Scale = 0.25;
  if (const char *S = std::getenv("TPDBT_SCALE")) {
    double V = std::atof(S);
    if (V > 0)
      Scale *= V;
  }

  const std::vector<std::string> Names = ablationBenchmarks();
  std::vector<double> SdBps(Names.size()), SdCps(Names.size()),
      SdLps(Names.size());
  std::vector<uint64_t> Regions(Names.size()), Cycles(Names.size());
  parallelFor(
      Names.size(), core::ExperimentConfig::fromEnv().effectiveJobs(),
      [&](size_t I) {
        auto B = workloads::generateBenchmark(
            workloads::scaledSpec(*workloads::findSpec(Names[I]), Scale));
        dbt::DbtOptions RunOpts = Opts;
        core::SweepResult Sweep = core::runSweep(B.Ref, {T}, RunOpts, ~0ull);
        const profile::ProfileSnapshot &Inip = Sweep.PerThreshold[0];
        const profile::ProfileSnapshot &Avep = Sweep.Average;
        cfg::Cfg G(B.Ref);
        SdBps[I] = analysis::sdBranchProb(Inip, Avep, G);
        SdCps[I] = analysis::sdCompletionProb(Inip, Avep, G);
        SdLps[I] = analysis::sdLoopBackProb(Inip, Avep, G);
        Regions[I] = Inip.Regions.size();
        Cycles[I] = Inip.Cycles;
      });

  AblationResult Out;
  for (size_t I = 0; I < Names.size(); ++I) {
    Out.Regions += Regions[I];
    if (CyclesOut)
      CyclesOut->push_back(Cycles[I]);
  }
  Out.SdBp = tpdbt::mean(SdBps);
  Out.SdCp = tpdbt::mean(SdCps);
  Out.SdLp = tpdbt::mean(SdLps);
  return Out;
}

} // namespace bench
} // namespace tpdbt

#endif // TPDBT_BENCH_ABLATIONCOMMON_H
