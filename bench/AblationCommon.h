//===- bench/AblationCommon.h - Shared ablation-bench helpers ---*- C++ -*-===//
//
// Part of the tpdbt project (CGO 2004 initial-prediction reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the design-choice ablation benches (DESIGN.md Section 6):
/// run a benchmark subset under a modified DbtOptions and report accuracy
/// and modeled performance per configuration.
///
/// Ablations sweep many policy configurations over the same inputs, so
/// they are trace-first: each benchmark is generated and recorded once per
/// process (or loaded from TPDBT_CACHE_DIR's .trace entries) and every
/// configuration replays the recording. Policy knobs never touch the
/// event stream, so a warm cache makes an ablation binary interpret
/// nothing at all.
///
//===----------------------------------------------------------------------===//

#ifndef TPDBT_BENCH_ABLATIONCOMMON_H
#define TPDBT_BENCH_ABLATIONCOMMON_H

#include "analysis/Metrics.h"
#include "core/Experiment.h"
#include "core/Trace.h"
#include "core/TraceCache.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "workloads/BenchSpec.h"
#include "workloads/Generator.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tpdbt {
namespace bench {

/// The benchmark subset ablations run on (kept small for speed; three
/// branchy INT, one phase-heavy INT, two loopy FP).
inline std::vector<std::string> ablationBenchmarks() {
  return {"gzip", "perlbmk", "crafty", "mcf", "swim", "mgrid"};
}

/// The workload scale ablations run at: a quarter of TPDBT_SCALE.
inline double ablationScale() {
  double Scale = 0.25;
  if (const char *S = std::getenv("TPDBT_SCALE")) {
    double V = std::atof(S);
    if (V > 0)
      Scale *= V;
  }
  return Scale;
}

/// One ablation benchmark, generated and recorded exactly once per
/// process and replayed by every configuration.
struct AblationWorkload {
  workloads::GeneratedBenchmark Bench;
  std::unique_ptr<cfg::Cfg> Graph;
  std::shared_ptr<const core::BlockTrace> Trace;
};

namespace detail {

struct AblationRegistry {
  /// Shares .trace recordings with the figure binaries when the scales
  /// line up; "off" disables the disk layer as usual.
  core::TraceCache Cache{core::ExperimentConfig::fromEnv().CacheDir};
  std::mutex Lock; ///< guards the map structure only
  std::map<std::string, std::pair<std::once_flag, AblationWorkload>> Entries;
};

inline AblationRegistry &ablationRegistry() {
  static AblationRegistry R;
  return R;
}

} // namespace detail

/// Returns the process-wide workload for \p Name, generating and
/// recording it on first use. Thread-safe; concurrent first uses of
/// different benchmarks record in parallel.
inline const AblationWorkload &ablationWorkload(const std::string &Name) {
  detail::AblationRegistry &R = detail::ablationRegistry();
  std::pair<std::once_flag, AblationWorkload> *E;
  {
    std::lock_guard<std::mutex> Guard(R.Lock);
    E = &R.Entries[Name]; // std::map nodes are address-stable
  }
  std::call_once(E->first, [&] {
    AblationWorkload &W = E->second;
    workloads::BenchSpec Scaled =
        workloads::scaledSpec(*workloads::findSpec(Name), ablationScale());
    W.Bench = workloads::generateBenchmark(Scaled);
    W.Graph = std::make_unique<cfg::Cfg>(W.Bench.Ref);
    // Same key scheme as ExperimentContext::ensureProfiles: execution
    // config + spec + event budget (ablations run uncapped).
    core::ExperimentConfig EC = core::ExperimentConfig::fromEnv();
    EC.Scale = ablationScale();
    uint64_t ExecFp = combineSeeds(
        combineSeeds(EC.executionFingerprint(),
                     workloads::specFingerprint(Scaled)),
        ~0ull);
    W.Trace = R.Cache.get(Name, "ref", ExecFp, W.Bench.Ref, ~0ull);
  });
  return E->second;
}

/// One-line trace-cache report for the ablation banners, e.g.
/// "traces: 6 hit / 0 miss (0 corrupt), 0.0s recording, index 6 hit / 0
/// build".
inline std::string ablationStatsLine() {
  const core::TraceCache::Counters &S = detail::ablationRegistry().Cache.stats();
  return formatString(
      "traces: %llu hit / %llu miss (%llu corrupt), %.1fs recording, "
      "index %llu hit / %llu build",
      static_cast<unsigned long long>(S.hits()),
      static_cast<unsigned long long>(
          S.Misses.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          S.CorruptEntries.load(std::memory_order_relaxed)),
      static_cast<double>(S.RecordMicros.load(std::memory_order_relaxed)) /
          1e6,
      static_cast<unsigned long long>(
          S.IndexHits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          S.IndexBuilds.load(std::memory_order_relaxed)));
}

/// Aggregate results of one configuration over the subset.
struct AblationResult {
  double SdBp = 0.0;
  double SdCp = 0.0;
  double SdLp = 0.0;
  double MeanSpeedupVsBase = 0.0; ///< cycles(base cfg) / cycles(this cfg)
  uint64_t Regions = 0;
  uint64_t SideExits = 0;
};

/// Replays the subset's recorded traces at threshold \p T under \p Opts
/// (scaled by TPDBT_SCALE * 0.25), one worker per benchmark up to
/// TPDBT_JOBS. Results are stored per benchmark index first and reduced
/// after the join, so they are byte-identical at any job count.
/// \p CyclesOut, when non-null, receives the per-benchmark cycles in
/// ablationBenchmarks() order for the speedup column.
inline AblationResult runAblation(const dbt::DbtOptions &Opts, uint64_t T,
                                  std::vector<uint64_t> *CyclesOut) {
  const std::vector<std::string> Names = ablationBenchmarks();
  std::vector<double> SdBps(Names.size()), SdCps(Names.size()),
      SdLps(Names.size());
  std::vector<uint64_t> Regions(Names.size()), Cycles(Names.size());
  parallelFor(
      Names.size(), core::ExperimentConfig::fromEnv().effectiveJobs(),
      [&](size_t I) {
        const AblationWorkload &W = ablationWorkload(Names[I]);
        dbt::DbtOptions RunOpts = Opts;
        core::SweepResult Sweep =
            core::replaySweep(*W.Trace, W.Bench.Ref, {T}, RunOpts);
        const profile::ProfileSnapshot &Inip = Sweep.PerThreshold[0];
        const profile::ProfileSnapshot &Avep = Sweep.Average;
        SdBps[I] = analysis::sdBranchProb(Inip, Avep, *W.Graph);
        SdCps[I] = analysis::sdCompletionProb(Inip, Avep, *W.Graph);
        SdLps[I] = analysis::sdLoopBackProb(Inip, Avep, *W.Graph);
        Regions[I] = Inip.Regions.size();
        Cycles[I] = Inip.Cycles;
      });

  AblationResult Out;
  for (size_t I = 0; I < Names.size(); ++I) {
    Out.Regions += Regions[I];
    if (CyclesOut)
      CyclesOut->push_back(Cycles[I]);
  }
  Out.SdBp = tpdbt::mean(SdBps);
  Out.SdCp = tpdbt::mean(SdCps);
  Out.SdLp = tpdbt::mean(SdLps);
  return Out;
}

} // namespace bench
} // namespace tpdbt

#endif // TPDBT_BENCH_ABLATIONCOMMON_H
