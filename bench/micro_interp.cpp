//===- bench/micro_interp.cpp - Interpreter microbenchmarks -----*- C++ -*-===//
//
// google-benchmark timings of the execution substrate: block dispatch,
// full benchmark interpretation, and the multi-policy sweep overhead.
// These are the pieces whose speed determines how long the figure
// reproductions take.
//
//===----------------------------------------------------------------------===//

#include "core/Runner.h"
#include "core/Trace.h"
#include "core/TraceCache.h"
#include "core/TraceIndex.h"
#include "core/TraceSegments.h"
#include "guest/ProgramBuilder.h"
#include "support/TextFile.h"
#include "vm/Interpreter.h"
#include "workloads/BenchSpec.h"
#include "workloads/Generator.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <unistd.h>

using namespace tpdbt;

namespace {

/// Tight counted loop: the block-dispatch fast path.
guest::Program makeHotLoop() {
  guest::ProgramBuilder PB("hot");
  auto Entry = PB.createBlock();
  auto Head = PB.createBlock();
  auto Exit = PB.createBlock();
  PB.setEntry(Entry);
  PB.switchTo(Entry);
  PB.movI(1, 0);
  PB.jump(Head);
  PB.switchTo(Head);
  PB.addI(1, 1, 1);
  PB.xorI(2, 1, 0x5a5a);
  PB.branchImm(guest::CondKind::LtI, 1, 1 << 20, Head, Exit);
  PB.switchTo(Exit);
  PB.halt();
  return PB.build();
}

void BM_InterpreterHotLoop(benchmark::State &State) {
  guest::Program P = makeHotLoop();
  vm::Interpreter I(P);
  uint64_t Insts = 0;
  for (auto _ : State) {
    vm::Machine M;
    M.reset(P);
    vm::RunOutcome Out = I.run(M, ~0ull);
    Insts += Out.InstsExecuted;
    benchmark::DoNotOptimize(Out.BlocksExecuted);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_InterpreterHotLoop)->Unit(benchmark::kMillisecond);

void BM_InterpretBenchmark(benchmark::State &State) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec("swim"), 0.02));
  vm::Interpreter I(B.Ref);
  uint64_t Insts = 0;
  for (auto _ : State) {
    vm::Machine M;
    M.reset(B.Ref);
    Insts += I.run(M, ~0ull).InstsExecuted;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_InterpretBenchmark)->Unit(benchmark::kMillisecond);

/// Cost of simulating N thresholds from one execution (items = block
/// events, so the per-event policy overhead is directly visible).
void BM_SweepPolicies(benchmark::State &State) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec("gzip"), 0.02));
  std::vector<uint64_t> Thresholds;
  for (int I = 0; I < State.range(0); ++I)
    Thresholds.push_back(100ull << I);
  uint64_t Events = 0;
  for (auto _ : State) {
    core::SweepResult R =
        core::runSweep(B.Ref, Thresholds, dbt::DbtOptions(), ~0ull);
    Events += R.Average.BlockEvents;
    benchmark::DoNotOptimize(R.Average.ProfilingOps);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_SweepPolicies)->Arg(1)->Arg(4)->Arg(15)
    ->Unit(benchmark::kMillisecond);

/// The unavoidable cold-path pass: interpret once while appending to a
/// BlockTrace. runSweep's cost is this plus one BM_ReplaySweep. Measured
/// per benchmark (self-loop density differs wildly: gzip stays in its
/// loops for ~half of all events, swim for ~95%), so the host translation
/// tier's coverage is visible in isolation — the BENCH_record.json
/// baseline at the repo root tracks this family.
void BM_RecordBenchmark(benchmark::State &State, const char *Name) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec(Name), 0.02));
  uint64_t Events = 0;
  for (auto _ : State) {
    core::BlockTrace T = core::BlockTrace::record(B.Ref, ~0ull);
    Events += T.numEvents();
    benchmark::DoNotOptimize(T.totalInsts());
  }
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK_CAPTURE(BM_RecordBenchmark, gzip, "gzip")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RecordBenchmark, swim, "swim")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RecordBenchmark, mcf, "mcf")
    ->Unit(benchmark::kMillisecond);

/// The same record pass with the jit tier switched off (TPDBT_HOST_JIT=0,
/// pre-decoded dispatch only): the gap to the plain BM_RecordBenchmark
/// row is the native-code speedup of the hottest chains and self-loops.
/// The knob is read per HostTier construction, so flipping it around the
/// timed region is enough.
void BM_RecordBenchmarkNoJit(benchmark::State &State, const char *Name) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec(Name), 0.02));
  setenv("TPDBT_HOST_JIT", "0", 1);
  uint64_t Events = 0;
  for (auto _ : State) {
    core::BlockTrace T = core::BlockTrace::record(B.Ref, ~0ull);
    Events += T.numEvents();
    benchmark::DoNotOptimize(T.totalInsts());
  }
  unsetenv("TPDBT_HOST_JIT");
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK_CAPTURE(BM_RecordBenchmarkNoJit, gzip, "gzip")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RecordBenchmarkNoJit, swim, "swim")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RecordBenchmarkNoJit, mcf, "mcf")
    ->Unit(benchmark::kMillisecond);

/// The record pass with the jit tier on but its scheduled backend off
/// (TPDBT_JIT_SCHED=0, plain program-order lowering): the gap to the
/// plain BM_RecordBenchmark row is what per-segment list scheduling,
/// direct-destination lowering, the fall-through self-loop latch, and
/// grouped exit stubs buy on top of the jit tier itself.
void BM_RecordBenchmarkNoSched(benchmark::State &State, const char *Name) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec(Name), 0.02));
  setenv("TPDBT_JIT_SCHED", "0", 1);
  uint64_t Events = 0;
  for (auto _ : State) {
    core::BlockTrace T = core::BlockTrace::record(B.Ref, ~0ull);
    Events += T.numEvents();
    benchmark::DoNotOptimize(T.totalInsts());
  }
  unsetenv("TPDBT_JIT_SCHED");
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK_CAPTURE(BM_RecordBenchmarkNoSched, gzip, "gzip")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RecordBenchmarkNoSched, swim, "swim")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RecordBenchmarkNoSched, mcf, "mcf")
    ->Unit(benchmark::kMillisecond);

/// The full cold-record cache miss — interpret, serialize, compress,
/// index, write .trace + .trace.idx — through the segmented pipeline
/// (TPDBT_SEGMENT_EVENTS at its default) vs. the monolithic v2 writer
/// (the =0 kill switch). On multi-core hosts the streamed row should
/// undercut the sequential one: segment encode + compress + index parts
/// overlap with recording. On a single hardware thread the two are
/// expected to tie (same total work, different order).
void recordColdMiss(benchmark::State &State, const char *Budget) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec("mcf"), 0.02));
  const std::string Dir =
      (std::filesystem::temp_directory_path() /
       ("tpdbt_bench_record_" + std::to_string(getpid())))
          .string();
  setenv("TPDBT_SEGMENT_EVENTS", Budget, 1);
  uint64_t Events = 0;
  for (auto _ : State) {
    State.PauseTiming();
    std::filesystem::remove_all(Dir);
    State.ResumeTiming();
    core::TraceCache Cache(Dir);
    auto T = Cache.get("mcf", "ref", 1, B.Ref, ~0ull);
    Events += T->numEvents();
    benchmark::DoNotOptimize(T->totalInsts());
  }
  unsetenv("TPDBT_SEGMENT_EVENTS");
  std::filesystem::remove_all(Dir);
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
void BM_RecordStreamed(benchmark::State &State, const char *) {
  recordColdMiss(State, "65536");
}
void BM_RecordSequential(benchmark::State &State, const char *) {
  recordColdMiss(State, "0");
}
BENCHMARK_CAPTURE(BM_RecordStreamed, mcf, "mcf")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RecordSequential, mcf, "mcf")
    ->Unit(benchmark::kMillisecond);

/// The trace-cache hit path: drive N thresholds from an indexed trace
/// with no interpretation at all. Compare against BM_SweepPolicies at the
/// same argument — the warm-cache speedup of the experiment driver. The
/// index is prebuilt outside the loop, matching the sidecar-hit case.
void BM_ReplaySweep(benchmark::State &State) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec("gzip"), 0.02));
  core::BlockTrace T = core::BlockTrace::record(B.Ref, ~0ull);
  T.index();
  std::vector<uint64_t> Thresholds;
  for (int I = 0; I < State.range(0); ++I)
    Thresholds.push_back(100ull << I);
  uint64_t Events = 0;
  for (auto _ : State) {
    core::SweepResult R =
        core::replaySweep(T, B.Ref, Thresholds, dbt::DbtOptions());
    Events += R.Average.BlockEvents;
    benchmark::DoNotOptimize(R.Average.ProfilingOps);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_ReplaySweep)->Arg(1)->Arg(4)->Arg(15)
    ->Unit(benchmark::kMillisecond);

/// The retired event-pump replay (now the adaptive-mode path and the
/// differential oracle): every trace event through every policy. The gap
/// to BM_ReplaySweep is the analytic index's speedup.
void BM_ReplaySweepEventPump(benchmark::State &State) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec("gzip"), 0.02));
  core::BlockTrace T = core::BlockTrace::record(B.Ref, ~0ull);
  std::vector<uint64_t> Thresholds;
  for (int I = 0; I < State.range(0); ++I)
    Thresholds.push_back(100ull << I);
  uint64_t Events = 0;
  for (auto _ : State) {
    core::SweepResult R =
        core::replaySweepEvents(T, B.Ref, Thresholds, dbt::DbtOptions());
    Events += R.Average.BlockEvents;
    benchmark::DoNotOptimize(R.Average.ProfilingOps);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_ReplaySweepEventPump)->Arg(1)->Arg(15)
    ->Unit(benchmark::kMillisecond);

/// The out-of-core replay path: the same event pump fed one decompressed
/// segment at a time from a TPDT v3 file. The gap to
/// BM_ReplaySweepEventPump at the same argument is the streaming tax
/// (per-segment inflate + decode) bought for O(segment) peak memory.
void BM_ReplayStreamedPump(benchmark::State &State) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec("gzip"), 0.02));
  core::BlockTrace T = core::BlockTrace::record(B.Ref, ~0ull);
  const std::string Path =
      (std::filesystem::temp_directory_path() /
       ("tpdbt_bench_stream_" + std::to_string(getpid()) + ".trace"))
          .string();
  writeTextFileAtomic(Path, T.serializeSegmented(core::DefaultSegmentEvents));
  std::vector<uint64_t> Thresholds;
  for (int I = 0; I < State.range(0); ++I)
    Thresholds.push_back(100ull << I);
  uint64_t Events = 0;
  for (auto _ : State) {
    core::SegmentedTraceReader Reader;
    std::string Error;
    if (!core::SegmentedTraceReader::open(Path, Reader, &Error))
      State.SkipWithError(Error.c_str());
    core::SweepResult R;
    if (!core::replaySweepStreamed(Reader, B.Ref, Thresholds,
                                   dbt::DbtOptions(), R, &Error))
      State.SkipWithError(Error.c_str());
    Events += R.Average.BlockEvents;
    benchmark::DoNotOptimize(R.Average.ProfilingOps);
  }
  std::filesystem::remove(Path);
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_ReplayStreamedPump)->Arg(1)->Arg(15)
    ->Unit(benchmark::kMillisecond);

/// One-time cost of building the analytic index (amortized across every
/// warm replay, and skipped entirely on a sidecar hit).
void BM_BuildTraceIndex(benchmark::State &State) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec("gzip"), 0.02));
  core::BlockTrace T = core::BlockTrace::record(B.Ref, ~0ull);
  uint64_t Events = 0;
  for (auto _ : State) {
    core::TraceIndex Idx = core::TraceIndex::build(T);
    Events += Idx.numEvents();
    benchmark::DoNotOptimize(Idx.totalInsts());
  }
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_BuildTraceIndex)->Unit(benchmark::kMillisecond);

void BM_GenerateBenchmark(benchmark::State &State) {
  const auto &Spec = *workloads::findSpec("gcc");
  for (auto _ : State) {
    auto B = workloads::generateBenchmark(Spec);
    benchmark::DoNotOptimize(B.Ref.numBlocks());
  }
}
BENCHMARK(BM_GenerateBenchmark);

} // namespace

BENCHMARK_MAIN();
