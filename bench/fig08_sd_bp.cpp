//===- bench/fig08_sd_bp.cpp - Figure 8 reproduction ------------*- C++ -*-===//
//
// Figure 8: standard deviations of branch probabilities (Sd.BP) averaged
// over the SPEC2000 INT and FP benchmarks for every retranslation
// threshold, with the training-input reference Sd.BP(train) as the final
// row.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig08_sd_bp");
}
