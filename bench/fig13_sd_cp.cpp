//===- bench/fig13_sd_cp.cpp - Figure 13 reproduction -----------*- C++ -*-===//
//
// Figure 13: standard deviation of completion probabilities (Sd.CP),
// suite averages. The training profile has no regions, so there is no
// train reference (paper Section 2.3).
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main() {
  return bench::runFigureBench("fig13_sd_cp", [](core::ExperimentContext &C) {
    return core::figureAverages(
        C, core::MetricKind::SdCp,
        "Figure 13: Sd.CP(T) suite averages");
  });
}
