//===- bench/fig13_sd_cp.cpp - Figure 13 reproduction -----------*- C++ -*-===//
//
// Figure 13: standard deviation of completion probabilities (Sd.CP),
// suite averages. The training profile has no regions, so there is no
// train reference (paper Section 2.3).
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig13_sd_cp");
}
