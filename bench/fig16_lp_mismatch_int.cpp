//===- bench/fig16_lp_mismatch_int.cpp - Figure 16 reproduction -*- C++ -*-===//
//
// Figure 16: loop-back probability (trip-count class) mismatch rates per
// INT benchmark.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "workloads/BenchSpec.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig16_lp_mismatch_int");
}
