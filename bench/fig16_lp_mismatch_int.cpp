//===- bench/fig16_lp_mismatch_int.cpp - Figure 16 reproduction -*- C++ -*-===//
//
// Figure 16: loop-back probability (trip-count class) mismatch rates per
// INT benchmark.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "workloads/BenchSpec.h"

using namespace tpdbt;

int main() {
  return bench::runFigureBench(
      "fig16_lp_mismatch_int", [](core::ExperimentContext &C) {
        return core::figurePerBench(
            C, core::MetricKind::LpMismatch, workloads::intBenchmarkNames(),
            "Figure 16: loop-back probability mismatch rates (INT)");
      });
}
