//===- bench/fig14_sd_lp.cpp - Figure 14 reproduction -----------*- C++ -*-===//
//
// Figure 14: standard deviation of loop-back probabilities (Sd.LP),
// suite averages.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig14_sd_lp");
}
