//===- bench/fig14_sd_lp.cpp - Figure 14 reproduction -----------*- C++ -*-===//
//
// Figure 14: standard deviation of loop-back probabilities (Sd.LP),
// suite averages.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main() {
  return bench::runFigureBench("fig14_sd_lp", [](core::ExperimentContext &C) {
    return core::figureAverages(
        C, core::MetricKind::SdLp,
        "Figure 14: Sd.LP(T) suite averages");
  });
}
