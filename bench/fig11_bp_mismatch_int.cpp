//===- bench/fig11_bp_mismatch_int.cpp - Figure 11 reproduction -*- C++ -*-===//
//
// Figure 11: branch probability mismatch rates per INT benchmark.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "workloads/BenchSpec.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig11_bp_mismatch_int");
}
