//===- bench/fig11_bp_mismatch_int.cpp - Figure 11 reproduction -*- C++ -*-===//
//
// Figure 11: branch probability mismatch rates per INT benchmark.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "workloads/BenchSpec.h"

using namespace tpdbt;

int main() {
  return bench::runFigureBench(
      "fig11_bp_mismatch_int", [](core::ExperimentContext &C) {
        return core::figurePerBench(
            C, core::MetricKind::BpMismatch, workloads::intBenchmarkNames(),
            "Figure 11: branch probability mismatch rates (INT)");
      });
}
