//===- bench/fig17_performance.cpp - Figure 17 reproduction -----*- C++ -*-===//
//
// Figure 17: relative performance of the suite for every retranslation
// threshold under the cycle cost model, normalized to the T=1 base (the
// "optimize everything immediately" configuration), for int, int without
// perlbmk, and fp.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig17_performance");
}
