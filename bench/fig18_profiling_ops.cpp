//===- bench/fig18_profiling_ops.cpp - Figure 18 reproduction ---*- C++ -*-===//
//
// Figure 18: total profiling operations (sum of all use and taken counts)
// of INIP(T) normalized to the training run.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig18_profiling_ops");
}
