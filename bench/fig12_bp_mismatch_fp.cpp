//===- bench/fig12_bp_mismatch_fp.cpp - Figure 12 reproduction --*- C++ -*-===//
//
// Figure 12: branch probability mismatch rates per FP benchmark.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "workloads/BenchSpec.h"

using namespace tpdbt;

int main() {
  return bench::runFigureBench(
      "fig12_bp_mismatch_fp", [](core::ExperimentContext &C) {
        return core::figurePerBench(
            C, core::MetricKind::BpMismatch, workloads::fpBenchmarkNames(),
            "Figure 12: branch probability mismatch rates (FP)");
      });
}
