//===- bench/fig12_bp_mismatch_fp.cpp - Figure 12 reproduction --*- C++ -*-===//
//
// Figure 12: branch probability mismatch rates per FP benchmark.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "workloads/BenchSpec.h"

using namespace tpdbt;

int main(int argc, char **argv) {
  return bench::runFigureBench(argc, argv, "fig12_bp_mismatch_fp");
}
