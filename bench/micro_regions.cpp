//===- bench/micro_regions.cpp - Region formation microbenchmarks -*- C++ -*-===//
//
// google-benchmark timings of the optimization-phase building blocks:
// region formation from a candidate pool and the CP/LP propagation.
//
//===----------------------------------------------------------------------===//

#include "analysis/RegionProb.h"
#include "cfg/Cfg.h"
#include "region/RegionFormer.h"
#include "workloads/BenchSpec.h"
#include "workloads/Generator.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace tpdbt;

namespace {

struct FormationSetup {
  workloads::GeneratedBenchmark B;
  std::unique_ptr<cfg::Cfg> G;
  std::vector<guest::BlockId> Seeds;
  std::vector<double> TakenProb;
  std::vector<bool> Eligible;

  FormationSetup() {
    B = workloads::generateBenchmark(
        workloads::scaledSpec(*workloads::findSpec("gcc"), 0.02));
    G = std::make_unique<cfg::Cfg>(B.Ref);
    size_t N = G->numBlocks();
    TakenProb.assign(N, 0.0);
    Eligible.assign(N, true);
    for (guest::BlockId Blk = 0; Blk < N; ++Blk) {
      TakenProb[Blk] = 0.1 + 0.8 * ((Blk * 37) % 100) / 100.0;
      if (Blk % 3 == 0)
        Seeds.push_back(Blk);
    }
  }
};

void BM_RegionFormation(benchmark::State &State) {
  FormationSetup Setup;
  region::FormationOptions Opts;
  for (auto _ : State) {
    region::RegionFormer Former(*Setup.G, Opts);
    auto Regions = Former.form(Setup.Seeds, Setup.TakenProb, Setup.Eligible);
    benchmark::DoNotOptimize(Regions.data());
  }
}
BENCHMARK(BM_RegionFormation)->Unit(benchmark::kMicrosecond);

void BM_RegionFormerConstruction(benchmark::State &State) {
  // Dominated by the natural-loop analysis (dominator tree).
  FormationSetup Setup;
  for (auto _ : State) {
    region::RegionFormer Former(*Setup.G, region::FormationOptions());
    benchmark::DoNotOptimize(&Former);
  }
}
BENCHMARK(BM_RegionFormerConstruction)->Unit(benchmark::kMicrosecond);

void BM_RegionFlowPropagation(benchmark::State &State) {
  FormationSetup Setup;
  region::RegionFormer Former(*Setup.G, region::FormationOptions());
  auto Regions =
      Former.form(Setup.Seeds, Setup.TakenProb, Setup.Eligible);
  for (auto _ : State) {
    double Sum = 0;
    for (const auto &R : Regions) {
      analysis::RegionFlow F =
          analysis::propagateRegionFlow(R, Setup.TakenProb);
      Sum += F.BackFlow + F.NodeFreq.back();
    }
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_RegionFlowPropagation)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
