//===- bench/ablation_pool.cpp - Candidate-pool size ablation ---*- C++ -*-===//
//
// DESIGN.md Section 6: how the candidate-pool trigger size changes region
// quality and modeled performance at T = 2000. Small pools optimize
// eagerly from fewer candidates (shorter regions); huge pools mostly wait
// for the registered-twice trigger.
//
//===----------------------------------------------------------------------===//

#include "AblationCommon.h"
#include "FigureBenchMain.h"

#include "support/Statistics.h"

using namespace tpdbt;
using namespace tpdbt::bench;

int main(int argc, char **argv) {
  if (int Code = bench::handleBenchArgs(argc, argv, "ablation_pool",
                                        "Ablation: candidate-pool trigger size at T=2000 over the six-benchmark subset");
      Code >= 0)
    return Code;

  Table T("Ablation: candidate-pool limit (threshold 2k, subset average)");
  T.setHeader({"pool_limit", "Sd.BP", "Sd.CP", "Sd.LP", "regions",
               "speedup_vs_pool20"});

  std::vector<uint64_t> BaseCycles;
  {
    dbt::DbtOptions Opts;
    Opts.PoolLimit = 20;
    runAblation(Opts, 2000, &BaseCycles);
  }
  for (size_t Limit : {4ul, 10ul, 20ul, 40ul, 160ul}) {
    dbt::DbtOptions Opts;
    Opts.PoolLimit = Limit;
    std::vector<uint64_t> Cycles;
    AblationResult R = runAblation(Opts, 2000, &Cycles);
    std::vector<double> Speedups;
    for (size_t I = 0; I < Cycles.size(); ++I)
      Speedups.push_back(static_cast<double>(BaseCycles[I]) /
                         static_cast<double>(Cycles[I]));
    T.addRow();
    T.addCell(static_cast<uint64_t>(Limit));
    T.addCell(R.SdBp, 3);
    T.addCell(R.SdCp, 3);
    T.addCell(R.SdLp, 3);
    T.addCell(R.Regions);
    T.addCell(tpdbt::geomean(Speedups), 3);
  }
  std::printf("%s", T.toText().c_str());
  std::printf("\n%s\n", ablationStatsLine().c_str());
  return 0;
}
