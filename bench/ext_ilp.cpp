//===- bench/ext_ilp.cpp - Region ILP under the machine model --------------===//
//
// Paper Section 4.4: "the prediction accuracy alone may not be sufficient
// to determine the performance ... other factors, such as the ILP
// available in the code". This bench makes that factor concrete: it
// schedules every region formed at T=2k as an if-converted hyperblock on
// the Itanium2-flavoured machine model (sched/RegionIlp.h) and reports
// per-benchmark ILP statistics, plus how much of it survives on narrower
// machines.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "core/Runner.h"
#include "sched/RegionIlp.h"
#include "support/Format.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/BenchSpec.h"
#include "workloads/Generator.h"

#include <cstdio>
#include <cstdlib>

using namespace tpdbt;
using namespace tpdbt::sched;

int main(int argc, char **argv) {
  if (int Code = bench::handleBenchArgs(argc, argv, "ext_ilp",
                                        "Extension: region ILP under the machine model");
      Code >= 0)
    return Code;

  double Scale = 0.25;
  if (const char *S = std::getenv("TPDBT_SCALE")) {
    double V = std::atof(S);
    if (V > 0)
      Scale *= V;
  }

  Table T("Extension: region ILP on the Itanium2-like model (T=2k, scale " +
          formatDouble(Scale, 2) + ")");
  T.setHeader({"benchmark", "regions", "mean_insts", "mean_ilp", "max_ilp",
               "speedup_vs_scalar", "width2_ilp"});

  MachineModel Wide = MachineModel::itanium2Like();
  MachineModel Narrow;
  Narrow.IssueWidth = 2;
  Narrow.Units = {2, 1, 1, 1};

  for (const char *Name : {"gzip", "gcc", "mcf", "perlbmk", "vortex",
                           "swim", "mgrid", "equake"}) {
    auto B = workloads::generateBenchmark(
        workloads::scaledSpec(*workloads::findSpec(Name), Scale));
    core::SweepResult Sweep =
        core::runSweep(B.Ref, {2000}, dbt::DbtOptions(), ~0ull);

    RunningStats Insts, Ilp, Speedup, NarrowIlp;
    for (const auto &R : Sweep.PerThreshold[0].Regions) {
      RegionIlpReport Rep = analyzeRegionIlp(R, B.Ref, Wide);
      if (Rep.Insts == 0)
        continue;
      Insts.add(static_cast<double>(Rep.Insts));
      Ilp.add(Rep.Ilp);
      Speedup.add(Rep.SpeedupVsScalar);
      RegionIlpReport NarrowRep = analyzeRegionIlp(R, B.Ref, Narrow);
      NarrowIlp.add(NarrowRep.Ilp);
    }

    T.addRow();
    T.addCell(std::string(Name));
    T.addCell(static_cast<uint64_t>(Ilp.count()));
    T.addCell(Insts.mean(), 1);
    T.addCell(Ilp.mean(), 2);
    T.addCell(Ilp.max(), 2);
    T.addCell(Speedup.mean(), 2);
    T.addCell(NarrowIlp.mean(), 2);
  }
  std::printf("%s", T.toText().c_str());
  std::printf("\nTwo regions with identical profile accuracy can differ "
              "substantially in schedulable ILP — the Section 4.4 factor "
              "the accuracy metrics do not see.\n");
  return 0;
}
