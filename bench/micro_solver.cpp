//===- bench/micro_solver.cpp - Linear solver microbenchmarks ---*- C++ -*-===//
//
// google-benchmark timings of the MKL stand-in used by the NAVEP
// normalization (DESIGN.md Section 6 ablation: exact dense LU vs. the
// Gauss-Seidel iteration), plus the end-to-end buildNavep cost on real
// snapshots.
//
//===----------------------------------------------------------------------===//

#include "analysis/Navep.h"
#include "core/Runner.h"
#include "numeric/Matrix.h"
#include "support/Rng.h"
#include "workloads/BenchSpec.h"
#include "workloads/Generator.h"

#include <benchmark/benchmark.h>

using namespace tpdbt;
using namespace tpdbt::numeric;

namespace {

/// Diagonally dominant random system of size N.
void makeSystem(size_t N, uint64_t Seed, DenseMatrix &A, SparseMatrix &S,
                std::vector<double> &B) {
  Rng R(Seed);
  A = DenseMatrix(N, N);
  std::vector<SparseMatrix::Triplet> Trips;
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J < N; ++J) {
      double V = (R.nextDouble() - 0.5) * 0.2;
      if (I == J)
        V += 2.0;
      A.at(I, J) = V;
      Trips.push_back({I, J, V});
    }
  }
  S = SparseMatrix::fromTriplets(N, Trips);
  B.assign(N, 0.0);
  for (auto &V : B)
    V = R.nextDouble();
}

void BM_DenseLuSolve(benchmark::State &State) {
  DenseMatrix A;
  SparseMatrix S;
  std::vector<double> B;
  makeSystem(static_cast<size_t>(State.range(0)), 42, A, S, B);
  for (auto _ : State) {
    std::vector<double> X;
    bool Ok = solveLu(A, B, X);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(X.data());
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_GaussSeidelSolve(benchmark::State &State) {
  DenseMatrix A;
  SparseMatrix S;
  std::vector<double> B;
  makeSystem(static_cast<size_t>(State.range(0)), 42, A, S, B);
  for (auto _ : State) {
    std::vector<double> X;
    bool Ok = gaussSeidel(S, B, X, 2000, 1e-10);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(X.data());
  }
}
BENCHMARK(BM_GaussSeidelSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_BuildNavep(benchmark::State &State) {
  auto B = workloads::generateBenchmark(
      workloads::scaledSpec(*workloads::findSpec("gcc"), 0.05));
  core::SweepResult Sweep =
      core::runSweep(B.Ref, {500}, dbt::DbtOptions(), ~0ull);
  cfg::Cfg G(B.Ref);
  for (auto _ : State) {
    analysis::Navep N =
        analysis::buildNavep(Sweep.PerThreshold[0], Sweep.Average, G);
    benchmark::DoNotOptimize(N.Copies.data());
  }
}
BENCHMARK(BM_BuildNavep)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
