//===- bench/ext_mispredict.cpp - Mispredicted-branch characterization -----===//
//
// The paper's first future-work item (Section 5), evaluated on the suite:
// classify every mispredicted branch of INIP(2k) by *why* it missed
// (phase change / unstable / near a classification boundary / profile too
// short), and measure how much of the misprediction mass the proposed
// continuous-profiling selection heuristic would cover with a small
// budget of monitored branches.
//
//===----------------------------------------------------------------------===//

#include "FigureBenchMain.h"

#include "analysis/Mispredict.h"
#include "core/Runner.h"
#include "core/WindowedProfile.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/BenchSpec.h"
#include "workloads/Generator.h"

#include <cstdio>
#include <cstdlib>

using namespace tpdbt;
using namespace tpdbt::analysis;

int main(int argc, char **argv) {
  if (int Code = bench::handleBenchArgs(argc, argv, "ext_mispredict",
                                        "Extension: mispredicted-branch characterization across thresholds");
      Code >= 0)
    return Code;

  double Scale = 0.5;
  if (const char *S = std::getenv("TPDBT_SCALE")) {
    double V = std::atof(S);
    if (V > 0)
      Scale *= V;
  }

  Table T("Extension: why initial predictions miss (INIP(2k) vs AVEP, "
          "weighted shares; scale " + formatDouble(Scale, 2) + ")");
  T.setHeader({"benchmark", "accurate", "phase", "unstable", "boundary",
               "short", "top8_coverage"});

  for (const char *Name : {"gzip", "mcf", "crafty", "parser", "perlbmk",
                           "eon", "wupwise", "swim", "lucas"}) {
    auto B = workloads::generateBenchmark(
        workloads::scaledSpec(*workloads::findSpec(Name), Scale));
    core::SweepResult Sweep =
        core::runSweep(B.Ref, {2000}, dbt::DbtOptions(), ~0ull);
    // Window from a recording instead of executing twice more.
    core::BlockTrace Trace = core::BlockTrace::record(B.Ref);
    core::WindowedProfile WP =
        core::collectWindowedProfile(B.Ref, 16, Trace);
    cfg::Cfg G(B.Ref);

    auto Ds = characterizeBranches(Sweep.PerThreshold[0], Sweep.Average,
                                   WP.Windows, G);
    double Share[5] = {0, 0, 0, 0, 0};
    double Total = 0;
    for (const auto &D : Ds) {
      Share[static_cast<int>(D.Kind)] += D.Weight;
      Total += D.Weight;
    }
    auto Selected = selectForContinuousProfiling(Ds, 8);
    double Coverage = mispredictionCoverage(Ds, Selected);

    T.addRow();
    T.addCell(std::string(Name));
    for (int K = 0; K < 5; ++K)
      T.addCell(Total > 0 ? Share[K] / Total : 0.0, 3);
    T.addCell(Coverage, 3);
  }
  std::printf("%s", T.toText().c_str());
  std::printf("\nColumns are AVEP-weighted shares of branches per kind; "
              "top8_coverage is the misprediction mass the 8 selected "
              "branches would put under continuous profiling.\n");
  return 0;
}
