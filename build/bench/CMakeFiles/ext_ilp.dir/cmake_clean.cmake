file(REMOVE_RECURSE
  "CMakeFiles/ext_ilp.dir/ext_ilp.cpp.o"
  "CMakeFiles/ext_ilp.dir/ext_ilp.cpp.o.d"
  "ext_ilp"
  "ext_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
