# Empty compiler generated dependencies file for ext_ilp.
# This may be replaced when dependencies are built.
