file(REMOVE_RECURSE
  "CMakeFiles/fig10_bp_mismatch.dir/fig10_bp_mismatch.cpp.o"
  "CMakeFiles/fig10_bp_mismatch.dir/fig10_bp_mismatch.cpp.o.d"
  "fig10_bp_mismatch"
  "fig10_bp_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bp_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
