# Empty dependencies file for fig10_bp_mismatch.
# This may be replaced when dependencies are built.
