file(REMOVE_RECURSE
  "CMakeFiles/ablation_duplication.dir/ablation_duplication.cpp.o"
  "CMakeFiles/ablation_duplication.dir/ablation_duplication.cpp.o.d"
  "ablation_duplication"
  "ablation_duplication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
