# Empty compiler generated dependencies file for ablation_duplication.
# This may be replaced when dependencies are built.
