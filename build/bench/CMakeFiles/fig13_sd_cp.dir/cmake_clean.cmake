file(REMOVE_RECURSE
  "CMakeFiles/fig13_sd_cp.dir/fig13_sd_cp.cpp.o"
  "CMakeFiles/fig13_sd_cp.dir/fig13_sd_cp.cpp.o.d"
  "fig13_sd_cp"
  "fig13_sd_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sd_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
