# Empty dependencies file for fig13_sd_cp.
# This may be replaced when dependencies are built.
