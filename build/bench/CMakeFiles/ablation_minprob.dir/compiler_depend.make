# Empty compiler generated dependencies file for ablation_minprob.
# This may be replaced when dependencies are built.
