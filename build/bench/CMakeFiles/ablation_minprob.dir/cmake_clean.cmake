file(REMOVE_RECURSE
  "CMakeFiles/ablation_minprob.dir/ablation_minprob.cpp.o"
  "CMakeFiles/ablation_minprob.dir/ablation_minprob.cpp.o.d"
  "ablation_minprob"
  "ablation_minprob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_minprob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
