# Empty dependencies file for fig18_profiling_ops.
# This may be replaced when dependencies are built.
