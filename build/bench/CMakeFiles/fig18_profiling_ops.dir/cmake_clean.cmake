file(REMOVE_RECURSE
  "CMakeFiles/fig18_profiling_ops.dir/fig18_profiling_ops.cpp.o"
  "CMakeFiles/fig18_profiling_ops.dir/fig18_profiling_ops.cpp.o.d"
  "fig18_profiling_ops"
  "fig18_profiling_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_profiling_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
