# Empty dependencies file for fig16_lp_mismatch_int.
# This may be replaced when dependencies are built.
