file(REMOVE_RECURSE
  "CMakeFiles/fig16_lp_mismatch_int.dir/fig16_lp_mismatch_int.cpp.o"
  "CMakeFiles/fig16_lp_mismatch_int.dir/fig16_lp_mismatch_int.cpp.o.d"
  "fig16_lp_mismatch_int"
  "fig16_lp_mismatch_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_lp_mismatch_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
