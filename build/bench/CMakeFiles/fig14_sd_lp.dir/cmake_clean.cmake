file(REMOVE_RECURSE
  "CMakeFiles/fig14_sd_lp.dir/fig14_sd_lp.cpp.o"
  "CMakeFiles/fig14_sd_lp.dir/fig14_sd_lp.cpp.o.d"
  "fig14_sd_lp"
  "fig14_sd_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sd_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
