# Empty compiler generated dependencies file for fig14_sd_lp.
# This may be replaced when dependencies are built.
