# Empty dependencies file for fig08_sd_bp.
# This may be replaced when dependencies are built.
