file(REMOVE_RECURSE
  "CMakeFiles/fig08_sd_bp.dir/fig08_sd_bp.cpp.o"
  "CMakeFiles/fig08_sd_bp.dir/fig08_sd_bp.cpp.o.d"
  "fig08_sd_bp"
  "fig08_sd_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sd_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
