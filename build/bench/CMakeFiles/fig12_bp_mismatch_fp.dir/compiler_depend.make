# Empty compiler generated dependencies file for fig12_bp_mismatch_fp.
# This may be replaced when dependencies are built.
