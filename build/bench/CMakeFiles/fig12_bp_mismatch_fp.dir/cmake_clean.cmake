file(REMOVE_RECURSE
  "CMakeFiles/fig12_bp_mismatch_fp.dir/fig12_bp_mismatch_fp.cpp.o"
  "CMakeFiles/fig12_bp_mismatch_fp.dir/fig12_bp_mismatch_fp.cpp.o.d"
  "fig12_bp_mismatch_fp"
  "fig12_bp_mismatch_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_bp_mismatch_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
