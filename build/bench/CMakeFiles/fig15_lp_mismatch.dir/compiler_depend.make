# Empty compiler generated dependencies file for fig15_lp_mismatch.
# This may be replaced when dependencies are built.
