file(REMOVE_RECURSE
  "CMakeFiles/fig15_lp_mismatch.dir/fig15_lp_mismatch.cpp.o"
  "CMakeFiles/fig15_lp_mismatch.dir/fig15_lp_mismatch.cpp.o.d"
  "fig15_lp_mismatch"
  "fig15_lp_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_lp_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
