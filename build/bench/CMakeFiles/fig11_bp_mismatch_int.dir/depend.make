# Empty dependencies file for fig11_bp_mismatch_int.
# This may be replaced when dependencies are built.
