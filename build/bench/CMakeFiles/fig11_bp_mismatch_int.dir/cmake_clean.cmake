file(REMOVE_RECURSE
  "CMakeFiles/fig11_bp_mismatch_int.dir/fig11_bp_mismatch_int.cpp.o"
  "CMakeFiles/fig11_bp_mismatch_int.dir/fig11_bp_mismatch_int.cpp.o.d"
  "fig11_bp_mismatch_int"
  "fig11_bp_mismatch_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bp_mismatch_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
