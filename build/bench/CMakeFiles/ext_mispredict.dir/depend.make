# Empty dependencies file for ext_mispredict.
# This may be replaced when dependencies are built.
