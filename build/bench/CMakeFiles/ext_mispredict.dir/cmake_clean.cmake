file(REMOVE_RECURSE
  "CMakeFiles/ext_mispredict.dir/ext_mispredict.cpp.o"
  "CMakeFiles/ext_mispredict.dir/ext_mispredict.cpp.o.d"
  "ext_mispredict"
  "ext_mispredict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mispredict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
