# Empty dependencies file for fig09_sd_bp_int.
# This may be replaced when dependencies are built.
