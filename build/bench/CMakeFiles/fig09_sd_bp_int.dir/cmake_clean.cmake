file(REMOVE_RECURSE
  "CMakeFiles/fig09_sd_bp_int.dir/fig09_sd_bp_int.cpp.o"
  "CMakeFiles/fig09_sd_bp_int.dir/fig09_sd_bp_int.cpp.o.d"
  "fig09_sd_bp_int"
  "fig09_sd_bp_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sd_bp_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
