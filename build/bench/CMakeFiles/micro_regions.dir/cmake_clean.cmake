file(REMOVE_RECURSE
  "CMakeFiles/micro_regions.dir/micro_regions.cpp.o"
  "CMakeFiles/micro_regions.dir/micro_regions.cpp.o.d"
  "micro_regions"
  "micro_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
