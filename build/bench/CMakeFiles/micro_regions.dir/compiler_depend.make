# Empty compiler generated dependencies file for micro_regions.
# This may be replaced when dependencies are built.
