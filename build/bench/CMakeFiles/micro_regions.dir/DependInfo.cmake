
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_regions.cpp" "bench/CMakeFiles/micro_regions.dir/micro_regions.cpp.o" "gcc" "bench/CMakeFiles/micro_regions.dir/micro_regions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tpdbt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dbt/CMakeFiles/tpdbt_dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tpdbt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tpdbt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/tpdbt_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/tpdbt_region.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/tpdbt_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/tpdbt_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tpdbt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/tpdbt_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tpdbt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
