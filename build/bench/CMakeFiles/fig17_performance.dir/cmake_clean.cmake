file(REMOVE_RECURSE
  "CMakeFiles/fig17_performance.dir/fig17_performance.cpp.o"
  "CMakeFiles/fig17_performance.dir/fig17_performance.cpp.o.d"
  "fig17_performance"
  "fig17_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
