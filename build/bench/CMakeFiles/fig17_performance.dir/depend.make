# Empty dependencies file for fig17_performance.
# This may be replaced when dependencies are built.
