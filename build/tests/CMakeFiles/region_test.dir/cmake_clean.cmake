file(REMOVE_RECURSE
  "CMakeFiles/region_test.dir/region/RegionFormerPropertyTest.cpp.o"
  "CMakeFiles/region_test.dir/region/RegionFormerPropertyTest.cpp.o.d"
  "CMakeFiles/region_test.dir/region/RegionFormerTest.cpp.o"
  "CMakeFiles/region_test.dir/region/RegionFormerTest.cpp.o.d"
  "CMakeFiles/region_test.dir/region/RegionTest.cpp.o"
  "CMakeFiles/region_test.dir/region/RegionTest.cpp.o.d"
  "region_test"
  "region_test.pdb"
  "region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
