file(REMOVE_RECURSE
  "CMakeFiles/dbt_test.dir/dbt/AdaptiveTest.cpp.o"
  "CMakeFiles/dbt_test.dir/dbt/AdaptiveTest.cpp.o.d"
  "CMakeFiles/dbt_test.dir/dbt/DbtEngineTest.cpp.o"
  "CMakeFiles/dbt_test.dir/dbt/DbtEngineTest.cpp.o.d"
  "CMakeFiles/dbt_test.dir/dbt/PolicyTest.cpp.o"
  "CMakeFiles/dbt_test.dir/dbt/PolicyTest.cpp.o.d"
  "dbt_test"
  "dbt_test.pdb"
  "dbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
