# Empty compiler generated dependencies file for dbt_test.
# This may be replaced when dependencies are built.
