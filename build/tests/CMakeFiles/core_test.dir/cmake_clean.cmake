file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/ExperimentTest.cpp.o"
  "CMakeFiles/core_test.dir/core/ExperimentTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/FiguresTest.cpp.o"
  "CMakeFiles/core_test.dir/core/FiguresTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/RunnerTest.cpp.o"
  "CMakeFiles/core_test.dir/core/RunnerTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/TraceTest.cpp.o"
  "CMakeFiles/core_test.dir/core/TraceTest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/WindowedProfileTest.cpp.o"
  "CMakeFiles/core_test.dir/core/WindowedProfileTest.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
