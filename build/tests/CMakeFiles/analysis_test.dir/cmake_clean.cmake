file(REMOVE_RECURSE
  "CMakeFiles/analysis_test.dir/analysis/MetricsTest.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/MetricsTest.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/MispredictTest.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/MispredictTest.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/NavepTest.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/NavepTest.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/OfflineRegionsTest.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/OfflineRegionsTest.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/PaperExampleTest.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/PaperExampleTest.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/PhasesTest.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/PhasesTest.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/RegionProbTest.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/RegionProbTest.cpp.o.d"
  "analysis_test"
  "analysis_test.pdb"
  "analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
