file(REMOVE_RECURSE
  "libtpdbt_workloads.a"
)
