# Empty dependencies file for tpdbt_workloads.
# This may be replaced when dependencies are built.
