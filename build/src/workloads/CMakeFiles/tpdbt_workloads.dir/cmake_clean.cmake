file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_workloads.dir/Generator.cpp.o"
  "CMakeFiles/tpdbt_workloads.dir/Generator.cpp.o.d"
  "CMakeFiles/tpdbt_workloads.dir/Suite.cpp.o"
  "CMakeFiles/tpdbt_workloads.dir/Suite.cpp.o.d"
  "libtpdbt_workloads.a"
  "libtpdbt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
