file(REMOVE_RECURSE
  "libtpdbt_region.a"
)
