# Empty dependencies file for tpdbt_region.
# This may be replaced when dependencies are built.
