file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_region.dir/Region.cpp.o"
  "CMakeFiles/tpdbt_region.dir/Region.cpp.o.d"
  "CMakeFiles/tpdbt_region.dir/RegionFormer.cpp.o"
  "CMakeFiles/tpdbt_region.dir/RegionFormer.cpp.o.d"
  "libtpdbt_region.a"
  "libtpdbt_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
