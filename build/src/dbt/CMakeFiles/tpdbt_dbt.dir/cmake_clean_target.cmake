file(REMOVE_RECURSE
  "libtpdbt_dbt.a"
)
