file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_dbt.dir/DbtEngine.cpp.o"
  "CMakeFiles/tpdbt_dbt.dir/DbtEngine.cpp.o.d"
  "CMakeFiles/tpdbt_dbt.dir/Policy.cpp.o"
  "CMakeFiles/tpdbt_dbt.dir/Policy.cpp.o.d"
  "libtpdbt_dbt.a"
  "libtpdbt_dbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
