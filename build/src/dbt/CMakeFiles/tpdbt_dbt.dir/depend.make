# Empty dependencies file for tpdbt_dbt.
# This may be replaced when dependencies are built.
