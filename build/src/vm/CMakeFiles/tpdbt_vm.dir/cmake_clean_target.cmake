file(REMOVE_RECURSE
  "libtpdbt_vm.a"
)
