file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_vm.dir/Interpreter.cpp.o"
  "CMakeFiles/tpdbt_vm.dir/Interpreter.cpp.o.d"
  "CMakeFiles/tpdbt_vm.dir/Machine.cpp.o"
  "CMakeFiles/tpdbt_vm.dir/Machine.cpp.o.d"
  "libtpdbt_vm.a"
  "libtpdbt_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
