# Empty compiler generated dependencies file for tpdbt_vm.
# This may be replaced when dependencies are built.
