file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_numeric.dir/Matrix.cpp.o"
  "CMakeFiles/tpdbt_numeric.dir/Matrix.cpp.o.d"
  "libtpdbt_numeric.a"
  "libtpdbt_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
