# Empty compiler generated dependencies file for tpdbt_numeric.
# This may be replaced when dependencies are built.
