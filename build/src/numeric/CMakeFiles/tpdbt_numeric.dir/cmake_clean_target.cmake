file(REMOVE_RECURSE
  "libtpdbt_numeric.a"
)
