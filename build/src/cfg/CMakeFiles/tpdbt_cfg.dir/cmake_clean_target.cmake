file(REMOVE_RECURSE
  "libtpdbt_cfg.a"
)
