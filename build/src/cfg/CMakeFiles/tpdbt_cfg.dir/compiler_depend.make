# Empty compiler generated dependencies file for tpdbt_cfg.
# This may be replaced when dependencies are built.
