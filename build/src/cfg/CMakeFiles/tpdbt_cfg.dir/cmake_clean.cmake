file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/tpdbt_cfg.dir/Cfg.cpp.o.d"
  "libtpdbt_cfg.a"
  "libtpdbt_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
