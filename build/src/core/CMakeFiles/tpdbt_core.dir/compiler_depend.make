# Empty compiler generated dependencies file for tpdbt_core.
# This may be replaced when dependencies are built.
