file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_core.dir/Experiment.cpp.o"
  "CMakeFiles/tpdbt_core.dir/Experiment.cpp.o.d"
  "CMakeFiles/tpdbt_core.dir/Figures.cpp.o"
  "CMakeFiles/tpdbt_core.dir/Figures.cpp.o.d"
  "CMakeFiles/tpdbt_core.dir/Runner.cpp.o"
  "CMakeFiles/tpdbt_core.dir/Runner.cpp.o.d"
  "CMakeFiles/tpdbt_core.dir/Trace.cpp.o"
  "CMakeFiles/tpdbt_core.dir/Trace.cpp.o.d"
  "CMakeFiles/tpdbt_core.dir/WindowedProfile.cpp.o"
  "CMakeFiles/tpdbt_core.dir/WindowedProfile.cpp.o.d"
  "libtpdbt_core.a"
  "libtpdbt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
