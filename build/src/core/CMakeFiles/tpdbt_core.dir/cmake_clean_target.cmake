file(REMOVE_RECURSE
  "libtpdbt_core.a"
)
