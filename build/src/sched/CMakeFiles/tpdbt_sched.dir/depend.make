# Empty dependencies file for tpdbt_sched.
# This may be replaced when dependencies are built.
