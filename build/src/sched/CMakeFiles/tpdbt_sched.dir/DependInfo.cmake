
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/DepGraph.cpp" "src/sched/CMakeFiles/tpdbt_sched.dir/DepGraph.cpp.o" "gcc" "src/sched/CMakeFiles/tpdbt_sched.dir/DepGraph.cpp.o.d"
  "/root/repo/src/sched/ListScheduler.cpp" "src/sched/CMakeFiles/tpdbt_sched.dir/ListScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/tpdbt_sched.dir/ListScheduler.cpp.o.d"
  "/root/repo/src/sched/MachineModel.cpp" "src/sched/CMakeFiles/tpdbt_sched.dir/MachineModel.cpp.o" "gcc" "src/sched/CMakeFiles/tpdbt_sched.dir/MachineModel.cpp.o.d"
  "/root/repo/src/sched/RegionIlp.cpp" "src/sched/CMakeFiles/tpdbt_sched.dir/RegionIlp.cpp.o" "gcc" "src/sched/CMakeFiles/tpdbt_sched.dir/RegionIlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/tpdbt_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/tpdbt_region.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tpdbt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/tpdbt_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
