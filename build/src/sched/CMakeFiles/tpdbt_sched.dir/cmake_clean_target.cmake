file(REMOVE_RECURSE
  "libtpdbt_sched.a"
)
