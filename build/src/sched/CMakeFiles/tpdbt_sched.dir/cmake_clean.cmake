file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_sched.dir/DepGraph.cpp.o"
  "CMakeFiles/tpdbt_sched.dir/DepGraph.cpp.o.d"
  "CMakeFiles/tpdbt_sched.dir/ListScheduler.cpp.o"
  "CMakeFiles/tpdbt_sched.dir/ListScheduler.cpp.o.d"
  "CMakeFiles/tpdbt_sched.dir/MachineModel.cpp.o"
  "CMakeFiles/tpdbt_sched.dir/MachineModel.cpp.o.d"
  "CMakeFiles/tpdbt_sched.dir/RegionIlp.cpp.o"
  "CMakeFiles/tpdbt_sched.dir/RegionIlp.cpp.o.d"
  "libtpdbt_sched.a"
  "libtpdbt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
