file(REMOVE_RECURSE
  "libtpdbt_guest.a"
)
