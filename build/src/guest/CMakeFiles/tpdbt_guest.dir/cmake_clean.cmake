file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_guest.dir/Assembler.cpp.o"
  "CMakeFiles/tpdbt_guest.dir/Assembler.cpp.o.d"
  "CMakeFiles/tpdbt_guest.dir/Isa.cpp.o"
  "CMakeFiles/tpdbt_guest.dir/Isa.cpp.o.d"
  "CMakeFiles/tpdbt_guest.dir/Program.cpp.o"
  "CMakeFiles/tpdbt_guest.dir/Program.cpp.o.d"
  "CMakeFiles/tpdbt_guest.dir/ProgramBuilder.cpp.o"
  "CMakeFiles/tpdbt_guest.dir/ProgramBuilder.cpp.o.d"
  "libtpdbt_guest.a"
  "libtpdbt_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
