# Empty compiler generated dependencies file for tpdbt_guest.
# This may be replaced when dependencies are built.
