
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/Assembler.cpp" "src/guest/CMakeFiles/tpdbt_guest.dir/Assembler.cpp.o" "gcc" "src/guest/CMakeFiles/tpdbt_guest.dir/Assembler.cpp.o.d"
  "/root/repo/src/guest/Isa.cpp" "src/guest/CMakeFiles/tpdbt_guest.dir/Isa.cpp.o" "gcc" "src/guest/CMakeFiles/tpdbt_guest.dir/Isa.cpp.o.d"
  "/root/repo/src/guest/Program.cpp" "src/guest/CMakeFiles/tpdbt_guest.dir/Program.cpp.o" "gcc" "src/guest/CMakeFiles/tpdbt_guest.dir/Program.cpp.o.d"
  "/root/repo/src/guest/ProgramBuilder.cpp" "src/guest/CMakeFiles/tpdbt_guest.dir/ProgramBuilder.cpp.o" "gcc" "src/guest/CMakeFiles/tpdbt_guest.dir/ProgramBuilder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tpdbt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
