# Empty compiler generated dependencies file for tpdbt_analysis.
# This may be replaced when dependencies are built.
