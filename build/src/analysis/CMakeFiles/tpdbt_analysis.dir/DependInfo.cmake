
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Metrics.cpp" "src/analysis/CMakeFiles/tpdbt_analysis.dir/Metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/tpdbt_analysis.dir/Metrics.cpp.o.d"
  "/root/repo/src/analysis/Mispredict.cpp" "src/analysis/CMakeFiles/tpdbt_analysis.dir/Mispredict.cpp.o" "gcc" "src/analysis/CMakeFiles/tpdbt_analysis.dir/Mispredict.cpp.o.d"
  "/root/repo/src/analysis/Navep.cpp" "src/analysis/CMakeFiles/tpdbt_analysis.dir/Navep.cpp.o" "gcc" "src/analysis/CMakeFiles/tpdbt_analysis.dir/Navep.cpp.o.d"
  "/root/repo/src/analysis/OfflineRegions.cpp" "src/analysis/CMakeFiles/tpdbt_analysis.dir/OfflineRegions.cpp.o" "gcc" "src/analysis/CMakeFiles/tpdbt_analysis.dir/OfflineRegions.cpp.o.d"
  "/root/repo/src/analysis/Phases.cpp" "src/analysis/CMakeFiles/tpdbt_analysis.dir/Phases.cpp.o" "gcc" "src/analysis/CMakeFiles/tpdbt_analysis.dir/Phases.cpp.o.d"
  "/root/repo/src/analysis/RegionProb.cpp" "src/analysis/CMakeFiles/tpdbt_analysis.dir/RegionProb.cpp.o" "gcc" "src/analysis/CMakeFiles/tpdbt_analysis.dir/RegionProb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/tpdbt_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/tpdbt_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/tpdbt_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tpdbt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/tpdbt_region.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/tpdbt_guest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
