file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_analysis.dir/Metrics.cpp.o"
  "CMakeFiles/tpdbt_analysis.dir/Metrics.cpp.o.d"
  "CMakeFiles/tpdbt_analysis.dir/Mispredict.cpp.o"
  "CMakeFiles/tpdbt_analysis.dir/Mispredict.cpp.o.d"
  "CMakeFiles/tpdbt_analysis.dir/Navep.cpp.o"
  "CMakeFiles/tpdbt_analysis.dir/Navep.cpp.o.d"
  "CMakeFiles/tpdbt_analysis.dir/OfflineRegions.cpp.o"
  "CMakeFiles/tpdbt_analysis.dir/OfflineRegions.cpp.o.d"
  "CMakeFiles/tpdbt_analysis.dir/Phases.cpp.o"
  "CMakeFiles/tpdbt_analysis.dir/Phases.cpp.o.d"
  "CMakeFiles/tpdbt_analysis.dir/RegionProb.cpp.o"
  "CMakeFiles/tpdbt_analysis.dir/RegionProb.cpp.o.d"
  "libtpdbt_analysis.a"
  "libtpdbt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
