file(REMOVE_RECURSE
  "libtpdbt_analysis.a"
)
