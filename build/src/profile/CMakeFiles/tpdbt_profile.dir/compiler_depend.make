# Empty compiler generated dependencies file for tpdbt_profile.
# This may be replaced when dependencies are built.
