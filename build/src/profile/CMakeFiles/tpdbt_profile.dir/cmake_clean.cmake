file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_profile.dir/Profile.cpp.o"
  "CMakeFiles/tpdbt_profile.dir/Profile.cpp.o.d"
  "libtpdbt_profile.a"
  "libtpdbt_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
