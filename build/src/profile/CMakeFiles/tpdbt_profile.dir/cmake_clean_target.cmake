file(REMOVE_RECURSE
  "libtpdbt_profile.a"
)
