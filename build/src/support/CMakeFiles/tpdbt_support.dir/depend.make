# Empty dependencies file for tpdbt_support.
# This may be replaced when dependencies are built.
