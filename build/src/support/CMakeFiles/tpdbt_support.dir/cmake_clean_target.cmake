file(REMOVE_RECURSE
  "libtpdbt_support.a"
)
