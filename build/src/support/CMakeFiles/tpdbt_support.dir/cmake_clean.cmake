file(REMOVE_RECURSE
  "CMakeFiles/tpdbt_support.dir/Format.cpp.o"
  "CMakeFiles/tpdbt_support.dir/Format.cpp.o.d"
  "CMakeFiles/tpdbt_support.dir/Rng.cpp.o"
  "CMakeFiles/tpdbt_support.dir/Rng.cpp.o.d"
  "CMakeFiles/tpdbt_support.dir/Statistics.cpp.o"
  "CMakeFiles/tpdbt_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/tpdbt_support.dir/Table.cpp.o"
  "CMakeFiles/tpdbt_support.dir/Table.cpp.o.d"
  "CMakeFiles/tpdbt_support.dir/TextFile.cpp.o"
  "CMakeFiles/tpdbt_support.dir/TextFile.cpp.o.d"
  "libtpdbt_support.a"
  "libtpdbt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpdbt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
