file(REMOVE_RECURSE
  "CMakeFiles/threshold_tuner.dir/threshold_tuner.cpp.o"
  "CMakeFiles/threshold_tuner.dir/threshold_tuner.cpp.o.d"
  "threshold_tuner"
  "threshold_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
