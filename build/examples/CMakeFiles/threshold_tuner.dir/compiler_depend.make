# Empty compiler generated dependencies file for threshold_tuner.
# This may be replaced when dependencies are built.
